#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "core/report.h"
#include "er/blocking.h"
#include "er/matcher.h"
#include "gen/product_gen.h"
#include "sim/calibrate.h"
#include "sim/er_sim.h"

namespace erlb {
namespace {

std::vector<er::Entity> Products(uint64_t n, uint64_t seed = 1) {
  gen::ProductConfig cfg;
  cfg.num_entities = n;
  cfg.seed = seed;
  auto e = gen::GenerateProducts(cfg);
  EXPECT_TRUE(e.ok());
  return *e;
}

TEST(ReportTest, ContainsKeySections) {
  auto entities = Products(500);
  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  core::ErPipelineConfig cfg;
  cfg.strategy = lb::StrategyKind::kBlockSplit;
  cfg.num_map_tasks = 2;
  cfg.num_reduce_tasks = 4;
  core::ErPipeline pipeline(cfg);
  auto result = pipeline.Deduplicate(entities, blocking, matcher);
  ASSERT_TRUE(result.ok());

  std::string report = core::FormatRunReport(*result, cfg);
  EXPECT_NE(report.find("BlockSplit"), std::string::npos);
  EXPECT_NE(report.find("Job 1 (BDM)"), std::string::npos);
  EXPECT_NE(report.find("Job 2 (matching)"), std::string::npos);
  EXPECT_NE(report.find("Comparisons:"), std::string::npos);
  EXPECT_NE(report.find("straggler ratio"), std::string::npos);

  std::string summary = core::FormatRunSummary(*result, cfg);
  EXPECT_NE(summary.find("comparisons"), std::string::npos);
  EXPECT_NE(summary.find("matches"), std::string::npos);
}

TEST(ReportTest, BasicRunOmitsBdmSection) {
  auto entities = Products(300, 2);
  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  core::ErPipelineConfig cfg;
  cfg.strategy = lb::StrategyKind::kBasic;
  core::ErPipeline pipeline(cfg);
  auto result = pipeline.Deduplicate(entities, blocking, matcher);
  ASSERT_TRUE(result.ok());
  std::string report = core::FormatRunReport(*result, cfg);
  EXPECT_EQ(report.find("Job 1 (BDM)"), std::string::npos);
  EXPECT_NE(report.find("Basic"), std::string::npos);
}

TEST(CalibrateTest, ProducesPlausibleCosts) {
  auto entities = Products(2000, 3);
  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  sim::CalibrationOptions options;
  options.sample_pairs = 5000;
  auto cal = sim::CalibrateCostModel(entities, blocking, matcher, options);
  ASSERT_TRUE(cal.ok()) << cal.status().ToString();
  EXPECT_GT(cal->measured_pair_ns, 10.0);       // > 10 ns / comparison
  EXPECT_LT(cal->measured_pair_ns, 1000000.0);  // < 1 ms
  EXPECT_GT(cal->model.pair_cost_us, 0.0);
  EXPECT_EQ(cal->sampled_pairs, 5000u);
  // Cluster overheads inherited from the base model.
  EXPECT_DOUBLE_EQ(cal->model.task_overhead_ms,
                   options.base.task_overhead_ms);
}

TEST(CalibrateTest, SlotSlowdownScalesLinearly) {
  auto entities = Products(1500, 4);
  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  sim::CalibrationOptions fast, slow;
  fast.sample_pairs = slow.sample_pairs = 10000;
  fast.slot_slowdown = 1.0;
  slow.slot_slowdown = 10.0;
  slow.seed = fast.seed;
  // Wall-clock measurement: under a loaded parallel ctest run a single
  // calibration window can be inflated by scheduler contention, so allow
  // a few attempts before judging the ratio.
  double ratio = 0.0;
  for (int attempt = 0; attempt < 4; ++attempt) {
    auto a = sim::CalibrateCostModel(entities, blocking, matcher, fast);
    auto b = sim::CalibrateCostModel(entities, blocking, matcher, slow);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ratio = b->model.pair_cost_us / a->model.pair_cost_us;
    if (std::abs(ratio - 10.0) <= 5.0) break;
  }
  // Identical sampling; the model differs only by the slowdown factor
  // (timing noise allowed).
  EXPECT_NEAR(ratio, 10.0, 5.0);
}

TEST(CalibrateTest, CalibratedModelDrivesSimulation) {
  auto entities = Products(3000, 5);
  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  sim::CalibrationOptions options;
  options.sample_pairs = 2000;
  auto cal = sim::CalibrateCostModel(entities, blocking, matcher, options);
  ASSERT_TRUE(cal.ok());

  std::vector<std::vector<std::string>> keys(4);
  for (size_t i = 0; i < entities.size(); ++i) {
    keys[i % 4].push_back(blocking.Key(entities[i]));
  }
  auto bdm = bdm::Bdm::FromKeys(keys);
  ASSERT_TRUE(bdm.ok());
  sim::ClusterConfig cluster;
  cluster.num_nodes = 4;
  auto res = sim::SimulateEr(lb::StrategyKind::kBlockSplit, *bdm, 16,
                             cluster, cal->model);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->total_s, 0.0);
}

TEST(CalibrateTest, RejectsDegenerateInputs) {
  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  sim::CalibrationOptions options;
  EXPECT_FALSE(
      sim::CalibrateCostModel({}, blocking, matcher, options).ok());
  // All-singleton blocks: nothing to sample.
  std::vector<er::Entity> singletons;
  for (uint64_t i = 0; i < 10; ++i) {
    er::Entity e;
    e.id = i + 1;
    e.fields = {std::string(1, static_cast<char>('a' + i)) + "xx" +
                std::to_string(i)};
    singletons.push_back(std::move(e));
  }
  auto r = sim::CalibrateCostModel(singletons, blocking, matcher, options);
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

}  // namespace
}  // namespace erlb
