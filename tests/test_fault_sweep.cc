// Systematic fault sweep (ISSUE 7 satellite): every registered
// injection site is armed in turn against a checkpointed, retrying,
// out-of-core pipeline run over chunked CSV input. The contract under
// any injected fault:
//
//   1. the run either succeeds with matches identical to the unfaulted
//      reference, or fails with a clean Status — it never crashes, and
//   2. a rerun over the same checkpoint directory (fault cleared)
//      always converges to the reference result.
//
// A deterministic randomized pass varies site, trigger hit, and repeat
// mode on top of the exhaustive one-shot sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault.h"
#include "common/io_buffer.h"
#include "common/random.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "er/blocking.h"
#include "er/entity_io.h"
#include "er/matcher.h"
#include "gen/skew_gen.h"
#include "mr/job.h"

namespace erlb {
namespace {

class FaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto base = ScopedTempDir::Make();
    ASSERT_TRUE(base.ok());
    base_.emplace(std::move(*base));

    gen::SkewConfig config;
    config.num_entities = 250;
    config.num_blocks = 10;
    config.skew = 1.0;
    config.duplicate_fraction = 0.2;
    config.seed = 7;
    auto data = gen::GenerateSkewed(config);
    ASSERT_TRUE(data.ok());
    csv_path_ = base_->path() + "/entities.csv";
    ASSERT_TRUE(er::SaveEntitiesToCsv(csv_path_, *data).ok());

    auto reference = RunPipeline("");
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    reference_.emplace(std::move(*reference));
  }

  void TearDown() override { FaultInjector::Global().Reset(); }

  // One checkpointed external run over the chunked CSV ingest path,
  // with a retry budget — the configuration every fault site
  // participates in. `checkpoint_dir` empty means "fresh scratch dir".
  Result<core::ErPipelineResult> RunPipeline(std::string checkpoint_dir) {
    static int scratch_seq = 0;
    if (checkpoint_dir.empty()) {
      checkpoint_dir =
          base_->path() + "/scratch-ck-" + std::to_string(scratch_seq++);
    }
    mr::ExecutionOptions opts;
    opts.mode = mr::ExecutionMode::kExternal;
    opts.io_buffer_bytes = 256;
    opts.max_task_attempts = 3;
    opts.checkpoint.dir = checkpoint_dir;
    er::CsvSchema schema;
    schema.id_column = 0;
    schema.has_header = true;
    auto pipeline = core::ErPipelineBuilder()
                        .Execution(opts)
                        .Strategy(lb::StrategyKind::kBlockSplit)
                        .ReduceTasks(5)
                        .Workers(2)
                        .CsvSplitRecords(64)
                        .Build();
    return pipeline.DeduplicateCsv(
        csv_path_, schema, er::AttributeBlocking(gen::kSkewBlockField),
        er::JaroWinklerMatcher(0.85, gen::kSkewTitleField));
  }

  // Runs with the given fault armed and checks the sweep contract;
  // returns whether the faulted run succeeded.
  bool CheckContract(const std::string& site, const FaultSpec& spec,
                     const std::string& checkpoint_dir) {
    auto& fi = FaultInjector::Global();
    fi.Reset();
    EXPECT_TRUE(fi.Arm(site, spec).ok()) << site;

    auto faulted = RunPipeline(checkpoint_dir);
    const bool fired = fi.HitCount(site) >= spec.trigger_hit;
    fi.Reset();
    if (faulted.ok()) {
      // Retries absorbed the fault (or it never triggered): the result
      // must be indistinguishable from the reference.
      EXPECT_TRUE(faulted->matches.SameAs(reference_->matches)) << site;
      EXPECT_EQ(faulted->comparisons, reference_->comparisons) << site;
    } else {
      // A clean, explained failure — only acceptable if the fault
      // actually fired.
      EXPECT_TRUE(fired) << site << ": " << faulted.status().ToString();
      EXPECT_FALSE(faulted.status().message().empty()) << site;
      // Convergence: rerunning over the same (possibly partial)
      // checkpoint directory with the fault cleared must succeed and
      // match the reference.
      auto rerun = RunPipeline(checkpoint_dir);
      EXPECT_TRUE(rerun.ok()) << site << ": " << rerun.status().ToString();
      if (rerun.ok()) {
        EXPECT_TRUE(rerun->matches.SameAs(reference_->matches)) << site;
        EXPECT_EQ(rerun->comparisons, reference_->comparisons) << site;
      }
    }
    return faulted.ok();
  }

  std::optional<ScopedTempDir> base_;
  std::string csv_path_;
  std::optional<core::ErPipelineResult> reference_;
};

TEST_F(FaultSweepTest, EveryRegisteredSiteOneShotError) {
  auto sites = FaultInjector::RegisteredSites();
  ASSERT_FALSE(sites.empty());
  for (const auto& site : sites) {
    // worker.* sites live in the multi-process coordinator and cannot
    // fire under this single-process external configuration; their
    // deterministic crash/reassignment coverage is test_multiprocess.cc.
    if (std::string_view(site).rfind("worker.", 0) == 0) continue;
    // serve.* sites live in the erlb_serve daemon (accept loop, batch
    // drain) and never fire inside a batch pipeline; their injection
    // coverage is tests/test_serve.cc and the serve smoke test.
    if (std::string_view(site).rfind("serve.", 0) == 0) continue;
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.trigger_hit = 1;
    auto& fi = FaultInjector::Global();
    fi.Reset();
    ASSERT_TRUE(fi.Arm(site, spec).ok()) << site;
    const std::string ck_dir = base_->path() + "/ck-" + std::string(site);
    auto faulted = RunPipeline(ck_dir);
    // This configuration exercises every registered site at least once.
    EXPECT_GT(fi.HitCount(site), 0u) << site;
    fi.Reset();
    if (faulted.ok()) {
      EXPECT_TRUE(faulted->matches.SameAs(reference_->matches)) << site;
    } else {
      EXPECT_FALSE(faulted.status().message().empty()) << site;
      auto rerun = RunPipeline(ck_dir);
      ASSERT_TRUE(rerun.ok()) << site << ": " << rerun.status().ToString();
      EXPECT_TRUE(rerun->matches.SameAs(reference_->matches)) << site;
    }
  }
}

TEST_F(FaultSweepTest, RepeatingErrorsFailCleanlyAndConverge) {
  // A repeating fault defeats the retry budget: the run must fail with
  // a clean Status and the cleared rerun must converge. Spot-check the
  // task-lifecycle and durability sites (the full matrix is covered by
  // the randomized pass).
  for (const std::string site :
       {"task.map", "task.reduce", "spill.append", "checkpoint.commit"}) {
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.trigger_hit = 1;
    spec.repeat = true;
    EXPECT_FALSE(CheckContract(site, spec, base_->path() + "/rep-" + site))
        << site << " should have failed under a repeating fault";
  }
}

TEST_F(FaultSweepTest, RandomizedSiteTriggerRepeatSweep) {
  auto sites = FaultInjector::RegisteredSites();
  Pcg32 rng(20260807);
  for (int round = 0; round < 8; ++round) {
    const auto& site = sites[rng.NextBounded(
        static_cast<uint32_t>(sites.size()))];
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.trigger_hit = 1 + rng.NextBounded(40);
    spec.repeat = rng.NextBounded(2) == 1;
    CheckContract(std::string(site), spec,
                  base_->path() + "/rand-" + std::to_string(round));
  }
}

}  // namespace
}  // namespace erlb
