// The composable dataflow API (core/dataflow.h, core/stages.h).
//
// The heart of this file is the legacy differential: ErPipeline's entry
// points now build and run the standard stage graph, and
// LegacyRunPartitioned below is a verbatim port of the pre-dataflow
// two-job pipeline body (one JobRunner, RunBdmJob + BuildPlan +
// ExecutePlan, or RunBasicSingleJob). The graph-backed pipeline must be
// byte-identical to it — matches, comparison counters, per-task
// metrics, serialized MatchPlan — for all three strategies, one- and
// two-source, in-memory and external. Plus structural tests of the
// graph itself: validation errors, typed dataset access, report
// contents, cluster/union stages, CSV sources.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bdm/bdm_job.h"
#include "common/io_buffer.h"
#include "core/dataflow.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "core/stages.h"
#include "er/blocking.h"
#include "er/clustering.h"
#include "er/entity_io.h"
#include "er/matcher.h"
#include "gen/skew_gen.h"
#include "lb/basic.h"
#include "lb/plan_io.h"
#include "lb/strategy.h"

namespace erlb {
namespace {

std::vector<er::Entity> SkewedDataset(uint64_t seed, uint64_t n = 1200) {
  gen::SkewConfig config;
  config.num_entities = n;
  config.num_blocks = 20;
  config.skew = 0.9;
  config.duplicate_fraction = 0.25;
  config.seed = seed;
  auto data = gen::GenerateSkewed(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).ValueOrDie();
}

// ---- Legacy pipeline body (pre-dataflow), ported verbatim ---------------

struct LegacyResult {
  er::MatchResult matches;
  bdm::Bdm bdm;
  std::optional<lb::MatchPlan> plan;
  mr::JobMetrics bdm_metrics;
  mr::JobMetrics match_metrics;
  int64_t comparisons = 0;
  uint64_t skipped_entities = 0;
};

Result<LegacyResult> LegacyRunPartitioned(
    const core::ErPipelineConfig& config, const er::Partitions& partitions,
    const std::vector<er::Source>* partition_sources,
    const er::BlockingFunction& blocking, const er::Matcher& matcher,
    const lb::MatchPlan* prebuilt_plan = nullptr) {
  const lb::StrategyKind strategy_kind = prebuilt_plan != nullptr
                                             ? prebuilt_plan->strategy()
                                             : config.strategy;
  mr::JobRunner runner(config.EffectiveWorkers(), config.execution);
  LegacyResult result;

  if (prebuilt_plan == nullptr &&
      strategy_kind == lb::StrategyKind::kBasic) {
    lb::MatchJobOptions match_options;
    match_options.num_reduce_tasks = config.num_reduce_tasks;
    ERLB_ASSIGN_OR_RETURN(
        lb::MatchJobOutput out,
        lb::RunBasicSingleJob(partitions, blocking, matcher, match_options,
                              runner, partition_sources));
    result.matches = std::move(out.matches);
    result.match_metrics = std::move(out.metrics);
    result.comparisons = out.comparisons;
    return result;
  }

  bdm::BdmJobOptions bdm_options;
  bdm_options.num_reduce_tasks = config.num_reduce_tasks;
  bdm_options.use_combiner = config.use_combiner;
  bdm_options.missing_key_policy = config.missing_key_policy;
  if (partition_sources != nullptr) {
    bdm_options.partition_sources = *partition_sources;
  }
  ERLB_ASSIGN_OR_RETURN(
      bdm::BdmJobOutput bdm_out,
      bdm::RunBdmJob(partitions, blocking, bdm_options, runner));
  result.bdm = std::move(bdm_out.bdm);
  result.bdm_metrics = std::move(bdm_out.metrics);
  result.skipped_entities = bdm_out.skipped_entities;

  auto strategy = lb::MakeStrategy(strategy_kind);
  const lb::MatchPlan* plan = prebuilt_plan;
  if (plan == nullptr) {
    lb::MatchJobOptions match_options;
    match_options.num_reduce_tasks = config.num_reduce_tasks;
    match_options.assignment = config.assignment;
    match_options.sub_splits = config.sub_splits;
    ERLB_ASSIGN_OR_RETURN(result.plan,
                          strategy->BuildPlan(result.bdm, match_options));
    plan = &*result.plan;
  }

  ERLB_ASSIGN_OR_RETURN(
      lb::MatchJobOutput out,
      strategy->ExecutePlan(*plan, *bdm_out.annotated, result.bdm, matcher,
                            runner));
  result.matches = std::move(out.matches);
  result.match_metrics = std::move(out.metrics);
  result.comparisons = out.comparisons;
  return result;
}

void ExpectTaskMetricsEqual(const mr::JobMetrics& a,
                            const mr::JobMetrics& b) {
  ASSERT_EQ(a.map_tasks.size(), b.map_tasks.size());
  for (size_t i = 0; i < a.map_tasks.size(); ++i) {
    EXPECT_EQ(a.map_tasks[i].input_records, b.map_tasks[i].input_records);
    EXPECT_EQ(a.map_tasks[i].output_records,
              b.map_tasks[i].output_records);
    EXPECT_EQ(a.map_tasks[i].counters.values(),
              b.map_tasks[i].counters.values());
  }
  ASSERT_EQ(a.reduce_tasks.size(), b.reduce_tasks.size());
  for (size_t i = 0; i < a.reduce_tasks.size(); ++i) {
    EXPECT_EQ(a.reduce_tasks[i].input_records,
              b.reduce_tasks[i].input_records);
    EXPECT_EQ(a.reduce_tasks[i].groups, b.reduce_tasks[i].groups);
    EXPECT_EQ(a.reduce_tasks[i].output_records,
              b.reduce_tasks[i].output_records);
    EXPECT_EQ(a.reduce_tasks[i].counters.values(),
              b.reduce_tasks[i].counters.values());
  }
  EXPECT_EQ(a.counters.values(), b.counters.values());
}

/// Byte-level equality between the graph-backed pipeline result and the
/// legacy two-job body.
void ExpectMatchesLegacy(const core::ErPipelineResult& graph,
                         const LegacyResult& legacy) {
  // Identical matches, in identical order (same ExecutePlan, same task
  // order — not just the same set).
  EXPECT_EQ(graph.matches.pairs(), legacy.matches.pairs());
  EXPECT_EQ(graph.comparisons, legacy.comparisons);
  EXPECT_EQ(graph.skipped_entities, legacy.skipped_entities);
  ExpectTaskMetricsEqual(graph.match_metrics, legacy.match_metrics);
  ExpectTaskMetricsEqual(graph.bdm_metrics, legacy.bdm_metrics);
  ASSERT_EQ(graph.plan.has_value(), legacy.plan.has_value());
  if (graph.plan.has_value()) {
    EXPECT_EQ(lb::MatchPlanToJson(*graph.plan),
              lb::MatchPlanToJson(*legacy.plan));
  }
  ASSERT_EQ(graph.bdm.num_blocks(), legacy.bdm.num_blocks());
  if (graph.bdm.num_blocks() > 0) {
    EXPECT_EQ(graph.bdm.TotalPairs(), legacy.bdm.TotalPairs());
  }
}

class DataflowDifferentialTest
    : public ::testing::TestWithParam<
          std::tuple<lb::StrategyKind, mr::ExecutionMode>> {
 protected:
  core::ErPipelineConfig Config() const {
    core::ErPipelineConfig config;
    config.strategy = std::get<0>(GetParam());
    config.num_map_tasks = 4;
    config.num_reduce_tasks = 7;
    config.num_workers = 4;
    config.execution.mode = std::get<1>(GetParam());
    config.execution.io_buffer_bytes = 512;
    return config;
  }
};

TEST_P(DataflowDifferentialTest, OneSourceMatchesLegacyByteForByte) {
  auto entities = SkewedDataset(11);
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  er::JaroWinklerMatcher matcher(0.85, gen::kSkewTitleField);
  core::ErPipelineConfig config = Config();

  er::Partitions parts =
      er::SplitIntoPartitions(entities, config.num_map_tasks);
  auto legacy =
      LegacyRunPartitioned(config, parts, nullptr, blocking, matcher);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  core::ErPipeline pipeline(config);
  auto graph = pipeline.Deduplicate(entities, blocking, matcher);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_GT(graph->matches.size(), 0u);
  ExpectMatchesLegacy(*graph, *legacy);
  if (config.execution.mode == mr::ExecutionMode::kExternal) {
    EXPECT_TRUE(graph->match_metrics.external);
    EXPECT_GT(graph->match_metrics.spill_bytes_written, 0);
  }
}

TEST_P(DataflowDifferentialTest, TwoSourceMatchesLegacyByteForByte) {
  auto r_entities = SkewedDataset(21, 700);
  auto s_entities = SkewedDataset(22, 500);
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  er::JaroWinklerMatcher matcher(0.85, gen::kSkewTitleField);
  core::ErPipelineConfig config = Config();

  // Replicate Link's partition layout for the legacy run.
  std::vector<er::Entity> tagged_r = r_entities;
  for (auto& e : tagged_r) e.source = er::Source::kR;
  std::vector<er::Entity> tagged_s = s_entities;
  for (auto& e : tagged_s) e.source = er::Source::kS;
  uint32_t mr_tasks = 2, ms_tasks = 2;  // 700:500 over m=4 splits 2/2
  er::Partitions parts = er::SplitIntoPartitions(tagged_r, mr_tasks);
  er::Partitions s_parts = er::SplitIntoPartitions(tagged_s, ms_tasks);
  std::vector<er::Source> sources(mr_tasks, er::Source::kR);
  for (auto& p : s_parts) {
    parts.push_back(std::move(p));
    sources.push_back(er::Source::kS);
  }
  auto legacy =
      LegacyRunPartitioned(config, parts, &sources, blocking, matcher);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  core::ErPipeline pipeline(config);
  auto graph = pipeline.Link(r_entities, s_entities, blocking, matcher);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_GT(graph->matches.size(), 0u);
  ExpectMatchesLegacy(*graph, *legacy);
}

TEST_P(DataflowDifferentialTest, PrebuiltPlanMatchesLegacyByteForByte) {
  auto entities = SkewedDataset(31, 800);
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  er::JaroWinklerMatcher matcher(0.85, gen::kSkewTitleField);
  core::ErPipelineConfig config = Config();
  er::Partitions parts =
      er::SplitIntoPartitions(entities, config.num_map_tasks);

  // Build the plan the legacy way, then feed it to both paths.
  mr::JobRunner runner(config.EffectiveWorkers(), config.execution);
  bdm::BdmJobOptions bdm_options;
  bdm_options.num_reduce_tasks = config.num_reduce_tasks;
  auto bdm_out = bdm::RunBdmJob(parts, blocking, bdm_options, runner);
  ASSERT_TRUE(bdm_out.ok());
  lb::MatchJobOptions match_options;
  match_options.num_reduce_tasks = config.num_reduce_tasks;
  auto plan = lb::MakeStrategy(config.strategy)
                  ->BuildPlan(bdm_out->bdm, match_options);
  ASSERT_TRUE(plan.ok());

  auto legacy = LegacyRunPartitioned(config, parts, nullptr, blocking,
                                     matcher, &*plan);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  core::ErPipeline pipeline(config);
  auto graph =
      pipeline.DeduplicatePartitioned(parts, blocking, matcher, *plan);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  // The caller already holds the plan; neither path returns one.
  EXPECT_FALSE(graph->plan.has_value());
  ExpectMatchesLegacy(*graph, *legacy);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesBothModes, DataflowDifferentialTest,
    ::testing::Combine(
        ::testing::Values(lb::StrategyKind::kBasic,
                          lb::StrategyKind::kBlockSplit,
                          lb::StrategyKind::kPairRange),
        ::testing::Values(mr::ExecutionMode::kInMemory,
                          mr::ExecutionMode::kExternal)),
    [](const auto& info) {
      return std::string(lb::StrategyKindToName(std::get<0>(info.param))) +
             (std::get<1>(info.param) == mr::ExecutionMode::kExternal
                  ? "_external"
                  : "_in_memory");
    });

// ---- CSV source on the graph --------------------------------------------

TEST(DataflowCsvTest, CsvSourceGraphMatchesDeduplicateCsv) {
  auto entities = SkewedDataset(41, 500);
  auto base = ScopedTempDir::Make();
  ASSERT_TRUE(base.ok());
  const std::string csv_path = base->path() + "/entities.csv";
  ASSERT_TRUE(er::SaveEntitiesToCsv(csv_path, entities).ok());
  er::CsvSchema schema;
  schema.id_column = 0;
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  er::JaroWinklerMatcher matcher(0.85, gen::kSkewTitleField);

  core::ErPipelineConfig config;
  config.num_reduce_tasks = 5;
  config.num_workers = 4;
  config.csv_split_records = 128;

  // Hand-composed graph: CsvSourceStage + standard chain.
  auto df = core::BuildStandardDataflow(config, blocking, matcher);
  ASSERT_TRUE(df.ok());
  df->Emplace<core::CsvSourceStage>("source", core::kDatasetPartitions,
                                    csv_path, schema,
                                    config.csv_split_records);
  auto report = df->Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto matches = df->Get<er::MatchResult>(core::kDatasetMatches);
  ASSERT_TRUE(matches.ok());

  // The adapter entry point over the same file.
  core::ErPipeline pipeline(config);
  auto adapter = pipeline.DeduplicateCsv(csv_path, schema, blocking,
                                         matcher);
  ASSERT_TRUE(adapter.ok()) << adapter.status().ToString();
  EXPECT_EQ((*matches)->pairs(), adapter->matches.pairs());
  EXPECT_GT((*matches)->size(), 0u);

  // ceil(500 / 128) = 4 splits; the ingest stage reports the row count.
  const core::StageReport* source = report->Find("source");
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->output_records, 500u);
  const core::StageReport* bdm = report->Find("bdm");
  ASSERT_NE(bdm, nullptr);
  ASSERT_TRUE(bdm->job.has_value());
  EXPECT_EQ(bdm->job->map_tasks.size(), 4u);
}

// ---- Graph structure validation -----------------------------------------

er::MatchResult TwoPairs() {
  er::MatchResult m;
  m.Add(1, 2);
  m.Add(2, 3);
  return m;
}

TEST(DataflowValidateTest, MissingInputRejected) {
  core::Dataflow df;
  df.Emplace<core::ClusterStage>("cluster", "matches", "clusters");
  Status status = df.Validate();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.ToString().find("never produced"), std::string::npos);
}

TEST(DataflowValidateTest, DuplicateOutputRejected) {
  core::Dataflow df;
  ASSERT_TRUE(df.AddInput("matches", core::Dataset(TwoPairs())).ok());
  df.Emplace<core::ClusterStage>("a", "matches", "clusters");
  df.Emplace<core::ClusterStage>("b", "matches", "clusters");
  Status status = df.Validate();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.ToString().find("produced more than once"),
            std::string::npos);
}

TEST(DataflowValidateTest, DuplicateStageNameRejected) {
  core::Dataflow df;
  ASSERT_TRUE(df.AddInput("matches", core::Dataset(TwoPairs())).ok());
  df.Emplace<core::ClusterStage>("same", "matches", "c1");
  df.Emplace<core::ClusterStage>("same", "matches", "c2");
  EXPECT_TRUE(df.Validate().IsInvalidArgument());
}

TEST(DataflowValidateTest, CycleRejected) {
  core::Dataflow df;
  // a consumes its own (transitive) output: u1 -> u2 -> u1.
  df.Emplace<core::UnionMatchesStage>(
      "u1", std::vector<std::string>{"m2"}, "m1");
  df.Emplace<core::UnionMatchesStage>(
      "u2", std::vector<std::string>{"m1"}, "m2");
  Status status = df.Validate();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.ToString().find("cycle"), std::string::npos);
}

TEST(DataflowValidateTest, RebindingExternalInputRejected) {
  core::Dataflow df;
  ASSERT_TRUE(df.AddInput("matches", core::Dataset(TwoPairs())).ok());
  Status status = df.AddInput("matches", core::Dataset(TwoPairs()));
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(DataflowRunTest, SingleShot) {
  core::Dataflow df;
  ASSERT_TRUE(df.AddInput("matches", core::Dataset(TwoPairs())).ok());
  df.Emplace<core::ClusterStage>("cluster", "matches", "clusters");
  ASSERT_TRUE(df.Run().ok());
  EXPECT_TRUE(df.Run().status().IsFailedPrecondition());
}

TEST(DataflowRunTest, TypedAccessAndMismatch) {
  core::Dataflow df;
  ASSERT_TRUE(df.AddInput("matches", core::Dataset(TwoPairs())).ok());
  df.Emplace<core::ClusterStage>("cluster", "matches", "clusters");
  ASSERT_TRUE(df.Run().ok());

  auto clusters = df.Get<er::Clusters>("clusters");
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ((*clusters)->size(), 1u);  // {1,2,3} is one component
  EXPECT_EQ((**clusters)[0], (std::vector<uint64_t>{1, 2, 3}));

  EXPECT_TRUE(df.Get<bdm::Bdm>("clusters").status().IsInvalidArgument());
  EXPECT_TRUE(df.Get<er::Clusters>("absent").status().IsInvalidArgument());
}

TEST(DataflowRunTest, StageErrorNamesTheStage) {
  core::Dataflow df;
  er::CsvSchema schema;
  df.Emplace<core::CsvSourceStage>("ingest", "partitions",
                                   "/nonexistent/input.csv", schema, 64);
  core::ErPipelineConfig config;
  // Wire a full graph so the failure really interrupts a multi-stage run.
  er::ConstantBlocking blocking;
  er::JaroWinklerMatcher matcher;
  core::StandardGraphOptions graph;
  ASSERT_TRUE(core::AddStandardGraph(&df, graph, &blocking, &matcher).ok());
  auto report = df.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("ingest"), std::string::npos);
}

// ---- Report contents ----------------------------------------------------

TEST(DataflowReportTest, StandardGraphReportCarriesPlanAndMetrics) {
  auto entities = SkewedDataset(51, 600);
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  er::JaroWinklerMatcher matcher(0.85, gen::kSkewTitleField);
  core::ErPipelineConfig config;
  config.num_reduce_tasks = 5;
  config.num_workers = 2;
  config.execution.mode = mr::ExecutionMode::kExternal;

  auto df = core::BuildStandardDataflow(config, blocking, matcher);
  ASSERT_TRUE(df.ok());
  df->Emplace<core::EntitySourceStage>("source", core::kDatasetPartitions,
                                       &entities, 3);
  df->Emplace<core::ClusterStage>("cluster", core::kDatasetMatches,
                                  core::kDatasetClusters);
  auto report = df->Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Execution order respects dependencies.
  ASSERT_EQ(report->stages.size(), 5u);
  EXPECT_EQ(report->stages[0].stage, "source");
  EXPECT_EQ(report->stages[1].stage, "bdm");
  EXPECT_EQ(report->stages[2].stage, "plan");
  EXPECT_EQ(report->stages[3].stage, "match");
  EXPECT_EQ(report->stages[4].stage, "cluster");

  const core::StageReport* plan = report->Find("plan");
  ASSERT_NE(plan->plan, nullptr);
  EXPECT_EQ(plan->plan->strategy(), lb::StrategyKind::kBlockSplit);
  const core::StageReport* match = report->Find("match");
  ASSERT_TRUE(match->job.has_value());
  EXPECT_TRUE(match->job->external);
  EXPECT_GT(match->comparisons, 0);
  EXPECT_EQ(match->plan, plan->plan);  // one shared plan, zero copies
  EXPECT_GT(report->TotalSpillBytes(), 0);
  EXPECT_GT(report->total_seconds, 0.0);

  // Both renderings cover every stage.
  std::string text = core::FormatDataflowReport(*report);
  std::string json = core::DataflowReportToJson(*report);
  for (const auto& s : report->stages) {
    EXPECT_NE(text.find(s.stage), std::string::npos) << s.stage;
    EXPECT_NE(json.find("\"" + s.stage + "\""), std::string::npos)
        << s.stage;
  }
  EXPECT_NE(json.find("\"plan_strategy\": \"BlockSplit\""),
            std::string::npos);
}

// ---- Shared resources ---------------------------------------------------

TEST(DataflowResourceTest, GraphTempDirIsRemovedAfterRun) {
  auto base = ScopedTempDir::Make();
  ASSERT_TRUE(base.ok());
  auto entities = SkewedDataset(61, 400);
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  er::JaroWinklerMatcher matcher(0.85, gen::kSkewTitleField);

  core::ErPipelineConfig config;
  config.num_reduce_tasks = 4;
  config.num_workers = 2;
  config.execution.mode = mr::ExecutionMode::kExternal;
  config.execution.temp_dir = base->path();

  {
    auto df = core::BuildStandardDataflow(config, blocking, matcher);
    ASSERT_TRUE(df.ok());
    df->Emplace<core::EntitySourceStage>("source", core::kDatasetPartitions,
                                         &entities, 3);
    auto report = df->Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->TotalSpillBytes(), 0);
  }
  // The graph-scoped spill root (and every per-job dir inside) is gone
  // once the Dataflow is destroyed.
  EXPECT_TRUE(std::filesystem::is_empty(base->path()))
      << "spill dirs leaked under " << base->path();
}

}  // namespace
}  // namespace erlb
