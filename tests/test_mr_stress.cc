// Randomized stress tests of the MapReduce runtime: arbitrary job shapes
// checked against an in-memory group-by reference, run under varying
// worker counts.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/random.h"
#include "mr/job.h"

namespace erlb {
namespace mr {
namespace {

// Job: values are grouped by key; reduce emits (key, sum, count, min).
struct Agg {
  int64_t sum = 0;
  int64_t count = 0;
  int64_t min = 0;
  friend bool operator==(const Agg&, const Agg&) = default;
};

class IdentityMapper : public Mapper<int, int64_t, int, int64_t> {
 public:
  void Map(const int& key, const int64_t& v,
           MapContext<int, int64_t>* ctx) override {
    ctx->Emit(key, v);
  }
};

class AggReducer : public Reducer<int, int64_t, int, Agg> {
 public:
  void Reduce(std::span<const std::pair<int, int64_t>> group,
              ReduceContext<int, Agg>* ctx) override {
    Agg agg;
    agg.min = group.front().second;
    for (const auto& [k, v] : group) {
      agg.sum += v;
      agg.count += 1;
      agg.min = std::min(agg.min, v);
    }
    ctx->Emit(group.front().first, agg);
  }
};

JobSpec<int, int64_t, int, int64_t, int, Agg> AggSpec(uint32_t r) {
  JobSpec<int, int64_t, int, int64_t, int, Agg> spec;
  spec.num_reduce_tasks = r;
  spec.mapper_factory = [](const TaskContext&) {
    return std::make_unique<IdentityMapper>();
  };
  spec.reducer_factory = [](const TaskContext&) {
    return std::make_unique<AggReducer>();
  };
  spec.partitioner = [](const int& k, uint32_t r) {
    return static_cast<uint32_t>(k * 2654435761u) % r;
  };
  spec.key_less = [](const int& a, const int& b) { return a < b; };
  spec.group_equal = [](const int& a, const int& b) { return a == b; };
  return spec;
}

class MrStressTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MrStressTest, MatchesGroupByReference) {
  auto [m, r, workers] = GetParam();
  Pcg32 rng(static_cast<uint64_t>(m * 1000 + r * 10 + workers));

  std::vector<std::vector<std::pair<int, int64_t>>> input(m);
  std::map<int, Agg> reference;
  for (int p = 0; p < m; ++p) {
    uint32_t records = rng.NextBounded(200);
    for (uint32_t i = 0; i < records; ++i) {
      int key = static_cast<int>(rng.NextBounded(37));
      int64_t value = rng.NextInRange(-1000, 1000);
      input[p].push_back({key, value});
      auto& agg = reference[key];
      if (agg.count == 0) {
        agg.min = value;
      } else {
        agg.min = std::min(agg.min, value);
      }
      agg.sum += value;
      agg.count += 1;
    }
  }

  JobRunner runner(workers);
  auto result = runner.Run(AggSpec(r), input);
  std::map<int, Agg> actual;
  for (const auto& [k, v] : result.MergedOutput()) {
    EXPECT_FALSE(actual.count(k)) << "key " << k << " reduced twice";
    actual[k] = v;
  }
  EXPECT_EQ(actual, reference);

  // Metrics invariants.
  int64_t in_records = 0;
  for (const auto& p : input) in_records += p.size();
  EXPECT_EQ(result.metrics.TotalMapInputRecords(), in_records);
  EXPECT_EQ(result.metrics.TotalMapOutputPairs(), in_records);
  int64_t reduce_in = 0, groups = 0;
  for (const auto& t : result.metrics.reduce_tasks) {
    reduce_in += t.input_records;
    groups += t.groups;
  }
  EXPECT_EQ(reduce_in, in_records);
  EXPECT_EQ(groups, static_cast<int64_t>(reference.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MrStressTest,
    ::testing::Combine(::testing::Values(1, 3, 8, 17),   // m
                       ::testing::Values(1, 4, 13, 40),  // r
                       ::testing::Values(1, 4)),         // workers
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param));
    });

// Partitioner violations are caught, not silently misrouted.
using FatalSpec = JobSpec<int, int64_t, int, int64_t, int, Agg>;

TEST(MrJobDeathTest, OutOfRangePartitionerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto spec = AggSpec(2);
  spec.partitioner = [](const int&, uint32_t) { return 99u; };
  std::vector<std::vector<std::pair<int, int64_t>>> input{{{1, 1}}};
  JobRunner runner(1);
  EXPECT_DEATH(runner.Run(spec, input), "partitioner returned");
}

// Reduce-only invariant: a key appears in exactly one reduce task.
TEST(MrStressTest, KeyNeverSpansReduceTasks) {
  auto spec = AggSpec(7);
  Pcg32 rng(123);
  std::vector<std::vector<std::pair<int, int64_t>>> input(5);
  for (auto& part : input) {
    for (int i = 0; i < 100; ++i) {
      part.push_back({static_cast<int>(rng.NextBounded(11)), 1});
    }
  }
  JobRunner runner(3);
  auto result = runner.Run(spec, input);
  std::map<int, int> key_to_task;
  for (uint32_t t = 0; t < 7; ++t) {
    for (const auto& [k, v] : result.outputs_per_reduce_task[t]) {
      auto [it, inserted] = key_to_task.emplace(k, t);
      EXPECT_TRUE(inserted) << "key " << k << " in tasks " << it->second
                            << " and " << t;
    }
  }
}

}  // namespace
}  // namespace mr
}  // namespace erlb
