#include "bdm/bdm_job.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace erlb {
namespace bdm {
namespace {

using testing_util::ExampleBlocking;
using testing_util::PaperExamplePartitions;
using testing_util::PaperTwoSourcePartitions;
using testing_util::PaperTwoSourceTags;

TEST(BdmJobTest, PaperExampleMatrix) {
  mr::JobRunner runner(2);
  BdmJobOptions options;
  options.num_reduce_tasks = 3;
  auto blocking = ExampleBlocking();
  auto out = RunBdmJob(PaperExamplePartitions(), blocking, options, runner);
  ASSERT_TRUE(out.ok());
  const Bdm& bdm = out->bdm;
  EXPECT_EQ(bdm.num_blocks(), 4u);
  EXPECT_EQ(bdm.num_partitions(), 2u);
  EXPECT_EQ(bdm.Size(3, 0), 2u);
  EXPECT_EQ(bdm.Size(3, 1), 3u);
  EXPECT_EQ(bdm.TotalPairs(), 20u);
}

TEST(BdmJobTest, ResultIndependentOfReduceTasks) {
  mr::JobRunner runner(3);
  auto blocking = ExampleBlocking();
  for (uint32_t r : {1u, 2u, 5u, 16u}) {
    BdmJobOptions options;
    options.num_reduce_tasks = r;
    auto out =
        RunBdmJob(PaperExamplePartitions(), blocking, options, runner);
    ASSERT_TRUE(out.ok()) << "r=" << r;
    EXPECT_EQ(out->bdm.TotalPairs(), 20u) << "r=" << r;
    EXPECT_EQ(out->bdm.num_blocks(), 4u) << "r=" << r;
  }
}

TEST(BdmJobTest, CombinerDoesNotChangeResult) {
  mr::JobRunner runner(2);
  auto blocking = ExampleBlocking();
  BdmJobOptions with, without;
  with.num_reduce_tasks = without.num_reduce_tasks = 2;
  with.use_combiner = true;
  without.use_combiner = false;
  auto a = RunBdmJob(PaperExamplePartitions(), blocking, with, runner);
  auto b = RunBdmJob(PaperExamplePartitions(), blocking, without, runner);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->bdm.ToTriples().size(), b->bdm.ToTriples().size());
  for (uint32_t k = 0; k < a->bdm.num_blocks(); ++k) {
    for (uint32_t p = 0; p < 2; ++p) {
      EXPECT_EQ(a->bdm.Size(k, p), b->bdm.Size(k, p));
    }
  }
  // The combiner shrinks the shuffle: one record per (block, partition).
  int64_t with_recs = 0, without_recs = 0;
  for (const auto& t : a->metrics.reduce_tasks) {
    with_recs += t.input_records;
  }
  for (const auto& t : b->metrics.reduce_tasks) {
    without_recs += t.input_records;
  }
  EXPECT_EQ(with_recs, 8);      // 8 non-zero BDM cells
  EXPECT_EQ(without_recs, 14);  // one per entity
}

TEST(BdmJobTest, AnnotatedSideOutputMirrorsInput) {
  mr::JobRunner runner(2);
  auto blocking = ExampleBlocking();
  BdmJobOptions options;
  options.num_reduce_tasks = 2;
  auto parts = PaperExamplePartitions();
  auto out = RunBdmJob(parts, blocking, options, runner);
  ASSERT_TRUE(out.ok());
  // "map produces an additional output Π'i per partition that contains the
  // original entities annotated with their blocking keys."
  ASSERT_EQ(out->annotated->num_tasks(), 2u);
  for (uint32_t p = 0; p < 2; ++p) {
    const auto& file = out->annotated->File(p);
    ASSERT_EQ(file.size(), parts[p].size());
    for (size_t i = 0; i < file.size(); ++i) {
      EXPECT_EQ(file[i].first, blocking.Key(*parts[p][i]));
      EXPECT_EQ(file[i].second->id, parts[p][i]->id);
    }
  }
}

TEST(BdmJobTest, MissingKeyErrorPolicy) {
  mr::JobRunner runner(2);
  er::AttributeBlocking blocking(5);  // field 5 doesn't exist -> empty key
  BdmJobOptions options;
  options.num_reduce_tasks = 1;
  auto out = RunBdmJob(PaperExamplePartitions(), blocking, options, runner);
  EXPECT_TRUE(out.status().IsInvalidArgument());
}

TEST(BdmJobTest, MissingKeySkipPolicy) {
  mr::JobRunner runner(2);
  er::AttributeBlocking blocking(5);
  BdmJobOptions options;
  options.num_reduce_tasks = 1;
  options.missing_key_policy = MissingKeyPolicy::kSkip;
  auto out = RunBdmJob(PaperExamplePartitions(), blocking, options, runner);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->skipped_entities, 14u);
  EXPECT_EQ(out->bdm.num_blocks(), 0u);
}

TEST(BdmJobTest, MissingKeyBottomPolicy) {
  mr::JobRunner runner(2);
  er::AttributeBlocking blocking(5);
  BdmJobOptions options;
  options.num_reduce_tasks = 1;
  options.missing_key_policy = MissingKeyPolicy::kBottom;
  auto out = RunBdmJob(PaperExamplePartitions(), blocking, options, runner);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->bdm.num_blocks(), 1u);
  EXPECT_EQ(out->bdm.BlockKey(0), er::kBottomKey);
  EXPECT_EQ(out->bdm.Size(0), 14u);  // full Cartesian product block
}

TEST(BdmJobTest, EmptyInputRejected) {
  mr::JobRunner runner(1);
  auto blocking = ExampleBlocking();
  BdmJobOptions options;
  EXPECT_TRUE(
      RunBdmJob({}, blocking, options, runner).status().IsInvalidArgument());
}

TEST(BdmJobTest, TwoSourceTagsInTriples) {
  mr::JobRunner runner(2);
  auto blocking = ExampleBlocking();
  BdmJobOptions options;
  options.num_reduce_tasks = 2;
  options.partition_sources = PaperTwoSourceTags();
  auto out =
      RunBdmJob(PaperTwoSourcePartitions(), blocking, options, runner);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->bdm.two_source());
  EXPECT_EQ(out->bdm.TotalPairs(), 12u);
  EXPECT_EQ(out->bdm.SizeOfSource(3, er::Source::kS), 3u);
}

TEST(BdmJobTest, TwoSourceTagSizeMismatchRejected) {
  mr::JobRunner runner(2);
  auto blocking = ExampleBlocking();
  BdmJobOptions options;
  options.partition_sources = {er::Source::kR};  // 1 tag, 3 partitions
  EXPECT_TRUE(RunBdmJob(PaperTwoSourcePartitions(), blocking, options,
                        runner)
                  .status()
                  .IsInvalidArgument());
}

TEST(BdmJobTest, MapOutputCountsMatchEntityCounts) {
  mr::JobRunner runner(2);
  auto blocking = ExampleBlocking();
  BdmJobOptions options;
  options.num_reduce_tasks = 2;
  options.use_combiner = false;
  auto out = RunBdmJob(PaperExamplePartitions(), blocking, options, runner);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->metrics.TotalMapOutputPairs(), 14);
  EXPECT_EQ(out->metrics.TotalMapInputRecords(), 14);
}

}  // namespace
}  // namespace bdm
}  // namespace erlb
