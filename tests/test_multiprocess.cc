// Differential and fault tests of the shared-nothing multi-process
// execution mode (proc/coordinator.h + mr/job.h RunMultiProcess):
//
//  1. kMultiProcess must be observationally identical to kInMemory and
//     kExternal — same outputs, counters, per-task workloads, serialized
//     plans — for all three strategies, one- and two-source, including
//     the 1-worker degenerate case and worker-count > task-count.
//  2. Worker crashes are recoverable: the worker.spawn / worker.run /
//     worker.result fault sites deterministically exercise spawn
//     failure, task failover, and the kill + adopt-committed-work path,
//     and the job's output stays byte-identical throughout.
//  3. A durable checkpoint directory makes a rerun adopt every committed
//     map AND reduce task (reduce outputs checkpoint only in this mode).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/io_buffer.h"
#include "common/random.h"
#include "core/pipeline.h"
#include "er/blocking.h"
#include "er/matcher.h"
#include "gen/skew_gen.h"
#include "lb/plan_io.h"
#include "mr/job.h"

namespace erlb {

namespace {

struct Agg {
  int64_t sum = 0;
  int64_t count = 0;
  friend bool operator==(const Agg&, const Agg&) = default;
};

}  // namespace

// Reduce outputs cross the process boundary as spill runs, so the test
// job's output value needs a codec (the compile-time gate this mode
// adds on top of kExternal's intermediate-type requirement).
namespace mr {
template <>
struct SpillCodec<Agg> {
  static void Encode(const Agg& a, std::string* out) {
    SpillCodec<int64_t>::Encode(a.sum, out);
    SpillCodec<int64_t>::Encode(a.count, out);
  }
  static bool Decode(const char** p, const char* end, Agg* a) {
    return SpillCodec<int64_t>::Decode(p, end, &a->sum) &&
           SpillCodec<int64_t>::Decode(p, end, &a->count);
  }
  static size_t ApproxBytes(const Agg&) { return 2 * sizeof(int64_t); }
};
}  // namespace mr

namespace {

class IdentityMapper
    : public mr::Mapper<int, int64_t, std::string, int64_t> {
 public:
  void Map(const int& key, const int64_t& v,
           mr::MapContext<std::string, int64_t>* ctx) override {
    std::string k = "k";
    k += std::to_string(key);
    ctx->Emit(std::move(k), v);
    ctx->counters()->Increment("mapped", 1);
  }
};

class AggReducer
    : public mr::Reducer<std::string, int64_t, std::string, Agg> {
 public:
  void Reduce(std::span<const std::pair<std::string, int64_t>> group,
              mr::ReduceContext<std::string, Agg>* ctx) override {
    Agg agg;
    for (const auto& [k, v] : group) {
      agg.sum += v;
      agg.count += 1;
    }
    ctx->Emit(group.front().first, agg);
    ctx->counters()->Increment("groups_reduced", 1);
  }
};

mr::JobSpec<int, int64_t, std::string, int64_t, std::string, Agg> AggSpec(
    uint32_t r) {
  mr::JobSpec<int, int64_t, std::string, int64_t, std::string, Agg> spec;
  spec.num_reduce_tasks = r;
  spec.mapper_factory = [](const mr::TaskContext&) {
    return std::make_unique<IdentityMapper>();
  };
  spec.reducer_factory = [](const mr::TaskContext&) {
    return std::make_unique<AggReducer>();
  };
  spec.partitioner = [](const std::string& k, uint32_t r_) {
    uint32_t h = 2166136261u;
    for (char c : k) h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
    return h % r_;
  };
  spec.key_less = [](const std::string& a, const std::string& b) {
    return a < b;
  };
  spec.group_equal = [](const std::string& a, const std::string& b) {
    return a == b;
  };
  return spec;
}

std::vector<std::vector<std::pair<int, int64_t>>> RandomInput(uint32_t m,
                                                              uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::vector<std::pair<int, int64_t>>> input(m);
  for (auto& part : input) {
    uint32_t records = rng.NextBounded(300);
    for (uint32_t i = 0; i < records; ++i) {
      part.push_back({static_cast<int>(rng.NextBounded(37)),
                      rng.NextInRange(-1000, 1000)});
    }
  }
  return input;
}

void ExpectTaskMetricsEqual(const mr::JobMetrics& a,
                            const mr::JobMetrics& b) {
  ASSERT_EQ(a.map_tasks.size(), b.map_tasks.size());
  for (size_t i = 0; i < a.map_tasks.size(); ++i) {
    EXPECT_EQ(a.map_tasks[i].input_records, b.map_tasks[i].input_records);
    EXPECT_EQ(a.map_tasks[i].output_records, b.map_tasks[i].output_records);
    EXPECT_EQ(a.map_tasks[i].counters.values(),
              b.map_tasks[i].counters.values());
  }
  ASSERT_EQ(a.reduce_tasks.size(), b.reduce_tasks.size());
  for (size_t i = 0; i < a.reduce_tasks.size(); ++i) {
    EXPECT_EQ(a.reduce_tasks[i].input_records,
              b.reduce_tasks[i].input_records);
    EXPECT_EQ(a.reduce_tasks[i].groups, b.reduce_tasks[i].groups);
    EXPECT_EQ(a.reduce_tasks[i].output_records,
              b.reduce_tasks[i].output_records);
    EXPECT_EQ(a.reduce_tasks[i].counters.values(),
              b.reduce_tasks[i].counters.values());
  }
  EXPECT_EQ(a.counters.values(), b.counters.values());
}

template <typename Result>
void ExpectOutputsEqual(const Result& a, const Result& b) {
  ASSERT_EQ(a.outputs_per_reduce_task.size(),
            b.outputs_per_reduce_task.size());
  for (size_t t = 0; t < a.outputs_per_reduce_task.size(); ++t) {
    EXPECT_EQ(a.outputs_per_reduce_task[t], b.outputs_per_reduce_task[t])
        << "reduce task " << t;
  }
}

// ---- Engine-level differential sweep ------------------------------------

// The sweep includes the 1-worker degenerate pool and pools wider than
// the task count (8 processes for as few as 1 map task).
class MultiProcessStressTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MultiProcessStressTest, MultiProcessEqualsInMemoryAndExternal) {
  auto [m, r, workers] = GetParam();
  auto input = RandomInput(static_cast<uint32_t>(m),
                           static_cast<uint64_t>(m * 977 + r * 31 + workers));

  mr::ExecutionOptions in_memory;
  in_memory.mode = mr::ExecutionMode::kInMemory;
  mr::ExecutionOptions external;
  external.mode = mr::ExecutionMode::kExternal;
  external.io_buffer_bytes = 256;
  mr::ExecutionOptions multi_process;
  multi_process.mode = mr::ExecutionMode::kMultiProcess;
  multi_process.io_buffer_bytes = 256;  // tiny buffers: stress refills
  multi_process.num_worker_processes = static_cast<uint32_t>(workers);

  auto spec = AggSpec(static_cast<uint32_t>(r));
  auto mem = mr::JobRunner(1, in_memory).Run(spec, input);
  auto ext = mr::JobRunner(1, external).Run(spec, input);
  auto mp = mr::JobRunner(1, multi_process).Run(spec, input);
  ASSERT_TRUE(mem.status.ok());
  ASSERT_TRUE(ext.status.ok()) << ext.status.ToString();
  ASSERT_TRUE(mp.status.ok()) << mp.status.ToString();

  EXPECT_TRUE(mp.metrics.external);
  EXPECT_TRUE(mp.metrics.multi_process);
  EXPECT_FALSE(mem.metrics.multi_process);
  EXPECT_FALSE(ext.metrics.multi_process);
  EXPECT_GE(mp.metrics.worker_processes, 1u);
  EXPECT_EQ(mp.metrics.worker_deaths, 0u);

  ExpectOutputsEqual(mem, mp);
  ExpectOutputsEqual(ext, mp);
  ExpectTaskMetricsEqual(mem.metrics, mp.metrics);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiProcessStressTest,
    ::testing::Combine(::testing::Values(1, 3, 8),   // m
                       ::testing::Values(1, 4, 13),  // r
                       ::testing::Values(1, 3, 8)),  // worker processes
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param));
    });

// ---- Worker-crash recovery ----------------------------------------------

class MultiProcessFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }

  mr::JobResult<std::string, Agg> RunWithWorkers(uint32_t workers,
                                                 uint32_t m = 6,
                                                 uint32_t r = 5) {
    mr::ExecutionOptions options;
    options.mode = mr::ExecutionMode::kMultiProcess;
    options.num_worker_processes = workers;
    options.io_buffer_bytes = 512;
    return mr::JobRunner(1, options).Run(AggSpec(r), RandomInput(m, 12345));
  }
};

// worker.result fires in the parent on DONE intake and kills that
// worker — a deterministic single crash *after* the task committed. The
// dead worker's committed task must be adopted from its commit record,
// never re-executed, and the job's output must not change.
TEST_F(MultiProcessFaultTest, KilledWorkerCommittedWorkIsAdopted) {
  auto reference = RunWithWorkers(3);
  ASSERT_TRUE(reference.status.ok());

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.trigger_hit = 1;
  ASSERT_TRUE(FaultInjector::Global().Arm("worker.result", spec).ok());
  auto crashed = RunWithWorkers(3);
  FaultInjector::Global().Reset();

  ASSERT_TRUE(crashed.status.ok()) << crashed.status.ToString();
  EXPECT_EQ(crashed.metrics.worker_deaths, 1u);
  EXPECT_GE(crashed.metrics.map_tasks_resumed, 1);
  ExpectOutputsEqual(reference, crashed);
  // Aggregate counters survive adoption (the adopted task's counters
  // come from its commit record, not from re-execution).
  EXPECT_EQ(reference.metrics.counters.values(),
            crashed.metrics.counters.values());
}

// worker.run fires inside each worker before its first assignment (hit
// counters are per-process after the fork): the FAILED frame's
// retryable code must fail the task over to another worker without
// failing the job. Two workers bound the per-task failure count under
// the default failover budget.
TEST_F(MultiProcessFaultTest, FailedTasksFailOverToSurvivors) {
  auto reference = RunWithWorkers(2);
  ASSERT_TRUE(reference.status.ok());

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.trigger_hit = 1;
  ASSERT_TRUE(FaultInjector::Global().Arm("worker.run", spec).ok());
  auto faulted = RunWithWorkers(2);
  FaultInjector::Global().Reset();

  ASSERT_TRUE(faulted.status.ok()) << faulted.status.ToString();
  EXPECT_EQ(faulted.metrics.worker_deaths, 0u);
  ExpectOutputsEqual(reference, faulted);
  ExpectTaskMetricsEqual(reference.metrics, faulted.metrics);
}

// worker.spawn fires in the parent on the first fork attempt: the pool
// starts degraded (3 of 4 workers) but the job must still finish with
// identical output.
TEST_F(MultiProcessFaultTest, SpawnFailureDegradesPoolButFinishes) {
  auto reference = RunWithWorkers(4);
  ASSERT_TRUE(reference.status.ok());
  EXPECT_EQ(reference.metrics.worker_processes, 4u);

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.trigger_hit = 1;
  ASSERT_TRUE(FaultInjector::Global().Arm("worker.spawn", spec).ok());
  auto degraded = RunWithWorkers(4);
  FaultInjector::Global().Reset();

  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_EQ(degraded.metrics.worker_processes, 3u);
  ExpectOutputsEqual(reference, degraded);
}

// ---- Durable checkpoint: rerun adopts everything ------------------------

TEST(MultiProcessCheckpointTest, RerunAdoptsCommittedMapAndReduceTasks) {
  auto base = ScopedTempDir::Make();
  ASSERT_TRUE(base.ok());
  const uint32_t m = 5;
  const uint32_t r = 4;
  auto input = RandomInput(m, 99);
  auto spec = AggSpec(r);

  mr::ExecutionOptions options;
  options.mode = mr::ExecutionMode::kMultiProcess;
  options.num_worker_processes = 3;
  options.checkpoint.dir = base->path() + "/ck";

  auto first = mr::JobRunner(1, options).Run(spec, input);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_TRUE(first.metrics.checkpointed);
  EXPECT_EQ(first.metrics.map_tasks_resumed, 0);

  // A fresh runner over the same checkpoint dir re-derives job-0 and
  // adopts every committed task of BOTH phases — reduce outputs are
  // durable in this mode, unlike single-process external jobs.
  auto rerun = mr::JobRunner(1, options).Run(spec, input);
  ASSERT_TRUE(rerun.status.ok()) << rerun.status.ToString();
  EXPECT_EQ(rerun.metrics.map_tasks_resumed, static_cast<int64_t>(m));
  EXPECT_EQ(rerun.metrics.reduce_tasks_resumed, static_cast<int64_t>(r));
  ExpectOutputsEqual(first, rerun);
  EXPECT_EQ(first.metrics.counters.values(),
            rerun.metrics.counters.values());
}

// ---- Strategy-level differential (all three, one- and two-source) -------

core::ErPipeline MakePipeline(lb::StrategyKind kind,
                              mr::ExecutionMode mode,
                              uint32_t worker_processes = 0) {
  auto builder = core::ErPipelineBuilder()
                     .Strategy(kind)
                     .MapTasks(5)
                     .ReduceTasks(7)
                     .Workers(4)
                     .IoBufferBytes(512);
  if (worker_processes > 0) {
    builder.WorkerProcesses(worker_processes);
  } else {
    builder.ExecutionMode(mode);
  }
  return builder.Build();
}

std::vector<er::Entity> SkewedDataset(uint64_t seed, uint64_t n = 1200) {
  gen::SkewConfig config;
  config.num_entities = n;
  config.num_blocks = 25;
  config.skew = 1.0;
  config.duplicate_fraction = 0.2;
  config.seed = seed;
  auto data = gen::GenerateSkewed(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).ValueOrDie();
}

void ExpectPipelineResultsEqual(const core::ErPipelineResult& reference,
                                const core::ErPipelineResult& mp) {
  EXPECT_TRUE(reference.matches.SameAs(mp.matches));
  EXPECT_EQ(reference.comparisons, mp.comparisons);
  ExpectTaskMetricsEqual(reference.match_metrics, mp.match_metrics);
  ExpectTaskMetricsEqual(reference.bdm_metrics, mp.bdm_metrics);
  ASSERT_EQ(reference.plan.has_value(), mp.plan.has_value());
  if (reference.plan.has_value()) {
    EXPECT_EQ(lb::MatchPlanToJson(*reference.plan),
              lb::MatchPlanToJson(*mp.plan));
  }
  EXPECT_TRUE(mp.match_metrics.multi_process);
  EXPECT_TRUE(mp.match_metrics.external);
  EXPECT_GT(mp.match_metrics.spill_bytes_written, 0);
}

class StrategyMultiProcessTest
    : public ::testing::TestWithParam<lb::StrategyKind> {};

TEST_P(StrategyMultiProcessTest, OneSourceDifferential) {
  auto entities = SkewedDataset(11);
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  er::JaroWinklerMatcher matcher(0.85, gen::kSkewTitleField);

  auto mem = MakePipeline(GetParam(), mr::ExecutionMode::kInMemory)
                 .Deduplicate(entities, blocking, matcher);
  auto ext = MakePipeline(GetParam(), mr::ExecutionMode::kExternal)
                 .Deduplicate(entities, blocking, matcher);
  auto mp = MakePipeline(GetParam(), mr::ExecutionMode::kMultiProcess,
                         /*worker_processes=*/3)
                .Deduplicate(entities, blocking, matcher);
  ASSERT_TRUE(mem.ok()) << mem.status().ToString();
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  ASSERT_TRUE(mp.ok()) << mp.status().ToString();
  EXPECT_GT(mem->matches.size(), 0u);
  ExpectPipelineResultsEqual(*mem, *mp);
  EXPECT_TRUE(ext->matches.SameAs(mp->matches));
}

TEST_P(StrategyMultiProcessTest, TwoSourceDifferential) {
  auto r_entities = SkewedDataset(21, 800);
  auto s_entities = SkewedDataset(22, 600);
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  er::JaroWinklerMatcher matcher(0.85, gen::kSkewTitleField);

  auto mem = MakePipeline(GetParam(), mr::ExecutionMode::kInMemory)
                 .Link(r_entities, s_entities, blocking, matcher);
  auto mp = MakePipeline(GetParam(), mr::ExecutionMode::kMultiProcess,
                         /*worker_processes=*/3)
                .Link(r_entities, s_entities, blocking, matcher);
  ASSERT_TRUE(mem.ok()) << mem.status().ToString();
  ASSERT_TRUE(mp.ok()) << mp.status().ToString();
  EXPECT_GT(mem->matches.size(), 0u);
  ExpectPipelineResultsEqual(*mem, *mp);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyMultiProcessTest,
                         ::testing::Values(lb::StrategyKind::kBasic,
                                           lb::StrategyKind::kBlockSplit,
                                           lb::StrategyKind::kPairRange),
                         [](const auto& info) {
                           return lb::StrategyName(info.param);
                         });

// One-worker degenerate pool through the full pipeline, plus a pool
// wider than any phase's task count: both must match the in-memory run.
TEST(StrategyMultiProcessTest, DegenerateWorkerCounts) {
  auto entities = SkewedDataset(31, 700);
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  er::JaroWinklerMatcher matcher(0.85, gen::kSkewTitleField);

  auto mem = MakePipeline(lb::StrategyKind::kBlockSplit,
                          mr::ExecutionMode::kInMemory)
                 .Deduplicate(entities, blocking, matcher);
  ASSERT_TRUE(mem.ok());
  for (uint32_t workers : {1u, 16u}) {  // 16 > m=5 map tasks
    auto mp = MakePipeline(lb::StrategyKind::kBlockSplit,
                           mr::ExecutionMode::kMultiProcess, workers)
                  .Deduplicate(entities, blocking, matcher);
    ASSERT_TRUE(mp.ok()) << workers << ": " << mp.status().ToString();
    ExpectPipelineResultsEqual(*mem, *mp);
  }
}

}  // namespace
}  // namespace erlb
