#include "er/clustering.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "er/entity.h"
#include "er/matcher.h"
#include "er/similarity.h"

namespace erlb {
namespace er {
namespace {

TEST(UnionFindTest, SingletonsDisconnected) {
  UnionFind uf;
  uf.Add(1);
  uf.Add(2);
  EXPECT_FALSE(uf.Connected(1, 2));
  EXPECT_EQ(uf.num_elements(), 2u);
}

TEST(UnionFindTest, UnionConnects) {
  UnionFind uf;
  uf.Union(1, 2);
  uf.Union(2, 3);
  EXPECT_TRUE(uf.Connected(1, 3));
  EXPECT_FALSE(uf.Connected(1, 4));  // 4 unknown
}

TEST(UnionFindTest, FindIsIdempotentRepresentative) {
  UnionFind uf;
  uf.Union(10, 20);
  uf.Union(20, 30);
  uint64_t r = uf.Find(10);
  EXPECT_EQ(uf.Find(20), r);
  EXPECT_EQ(uf.Find(30), r);
  EXPECT_EQ(uf.Find(r), r);
}

TEST(UnionFindTest, SelfUnionIsNoop) {
  UnionFind uf;
  uf.Union(5, 5);
  EXPECT_EQ(uf.num_elements(), 1u);
  EXPECT_TRUE(uf.Connected(5, 5));
}

TEST(UnionFindTest, LargeChain) {
  UnionFind uf;
  for (uint64_t i = 0; i + 1 < 10000; ++i) uf.Union(i, i + 1);
  EXPECT_TRUE(uf.Connected(0, 9999));
  EXPECT_EQ(uf.num_elements(), 10000u);
}

TEST(ClusterMatchesTest, TransitiveClosure) {
  MatchResult m;
  m.Add(1, 2);
  m.Add(2, 3);  // 1-2-3 one cluster even though (1,3) never matched
  m.Add(7, 9);
  auto clusters = ClusterMatches(m);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(clusters[1], (std::vector<uint64_t>{7, 9}));
}

TEST(ClusterMatchesTest, EmptyResult) {
  EXPECT_TRUE(ClusterMatches(MatchResult()).empty());
}

TEST(ClusterMatchesTest, DuplicatePairsIgnored) {
  MatchResult m;
  m.Add(1, 2);
  m.Add(2, 1);
  m.Add(1, 2);
  auto clusters = ClusterMatches(m);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], (std::vector<uint64_t>{1, 2}));
}

TEST(ClusterMatchesTest, ClustersSortedBySmallestMember) {
  MatchResult m;
  m.Add(100, 200);
  m.Add(5, 6);
  m.Add(50, 60);
  auto clusters = ClusterMatches(m);
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0][0], 5u);
  EXPECT_EQ(clusters[1][0], 50u);
  EXPECT_EQ(clusters[2][0], 100u);
}

TEST(ClustersToPairsTest, ExpandsWithinClusterPairs) {
  Clusters clusters{{1, 2, 3}, {7, 9}};
  auto pairs = ClustersToPairs(clusters);
  EXPECT_EQ(pairs.size(), 4u);  // 3 + 1
  EXPECT_EQ(ClusterPairCount(clusters), 4u);
  MatchResult expected;
  expected.Add(1, 2);
  expected.Add(1, 3);
  expected.Add(2, 3);
  expected.Add(7, 9);
  EXPECT_TRUE(pairs.SameAs(expected));
}

TEST(ClusteringPropertyTest, ClosureIsIdempotentOnRandomGraphs) {
  Pcg32 rng(97);
  for (int iter = 0; iter < 20; ++iter) {
    MatchResult m;
    uint32_t n = 30 + rng.NextBounded(50);
    uint32_t edges = rng.NextBounded(2 * n);
    for (uint32_t e = 0; e < edges; ++e) {
      uint64_t a = 1 + rng.NextBounded(n);
      uint64_t b = 1 + rng.NextBounded(n);
      if (a != b) m.Add(a, b);
    }
    auto closed = ClustersToPairs(ClusterMatches(m));
    auto reclosed = ClustersToPairs(ClusterMatches(closed));
    EXPECT_TRUE(closed.SameAs(reclosed));
    // Closure is a superset of the input pairs.
    MatchResult canon = m;
    canon.Canonicalize();
    EXPECT_GE(closed.size(), canon.size());
  }
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  // Classic example: MARTHA vs MARHTA = 0.944...
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  // DWAYNE vs DUANE = 0.822...
  EXPECT_NEAR(JaroSimilarity("dwayne", "duane"), 0.822222, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("martha", "marhta");
  double jw = JaroWinklerSimilarity("martha", "marhta");
  // 3 leading chars in common: jw = jaro + 3*0.1*(1-jaro) = 0.961...
  EXPECT_NEAR(jw, jaro + 3 * 0.1 * (1 - jaro), 1e-12);
  EXPECT_NEAR(jw, 0.961111, 1e-5);
}

TEST(JaroWinklerTest, BoundedAndSymmetric) {
  Pcg32 rng(55);
  auto random_str = [&](size_t max_len) {
    std::string s;
    size_t len = rng.NextBounded(static_cast<uint32_t>(max_len + 1));
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.NextBounded(5));
    }
    return s;
  };
  for (int i = 0; i < 300; ++i) {
    std::string a = random_str(12), b = random_str(12);
    double jw = JaroWinklerSimilarity(a, b);
    EXPECT_GE(jw, 0.0);
    EXPECT_LE(jw, 1.0);
    EXPECT_DOUBLE_EQ(jw, JaroWinklerSimilarity(b, a));
    EXPECT_GE(jw, JaroSimilarity(a, b) - 1e-12);  // boost never hurts
  }
}

TEST(JaroWinklerMatcherTest, MatchesNearNames) {
  Entity a, b, c;
  a.id = 1;
  a.fields = {"jonathan smith"};
  b.id = 2;
  b.fields = {"jonathon smith"};
  c.id = 3;
  c.fields = {"maria garcia"};
  JaroWinklerMatcher m(0.9);
  EXPECT_TRUE(m.Match(a, b));
  EXPECT_FALSE(m.Match(a, c));
  EXPECT_NE(m.Describe().find("jaro-winkler"), std::string::npos);
}

}  // namespace
}  // namespace er
}  // namespace erlb
