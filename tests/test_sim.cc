#include <gtest/gtest.h>

#include "gen/skew_gen.h"
#include "sim/cost_model.h"
#include "sim/er_sim.h"
#include "sim/scheduler.h"

namespace erlb {
namespace sim {
namespace {

TEST(SchedulerTest, SingleSlotIsSequential) {
  auto res = ListSchedule({1.0, 2.0, 3.0}, 1);
  EXPECT_DOUBLE_EQ(res.makespan_s, 6.0);
  EXPECT_DOUBLE_EQ(res.task_start_s[0], 0.0);
  EXPECT_DOUBLE_EQ(res.task_start_s[1], 1.0);
  EXPECT_DOUBLE_EQ(res.task_start_s[2], 3.0);
}

TEST(SchedulerTest, PerfectParallelism) {
  auto res = ListSchedule({2.0, 2.0, 2.0, 2.0}, 4);
  EXPECT_DOUBLE_EQ(res.makespan_s, 2.0);
  EXPECT_DOUBLE_EQ(res.SlotImbalance(), 1.0);
}

TEST(SchedulerTest, FifoAssignsToEarliestFreeSlot) {
  // Tasks 10,1,1,1 on 2 slots: slot0 <- 10; slot1 <- 1,1,1.
  auto res = ListSchedule({10.0, 1.0, 1.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(res.makespan_s, 10.0);
  EXPECT_DOUBLE_EQ(res.slot_busy_s[0], 10.0);
  EXPECT_DOUBLE_EQ(res.slot_busy_s[1], 3.0);
}

TEST(SchedulerTest, StragglerDominatesMakespan) {
  // One huge task serializes the wave regardless of slot count — the
  // Basic strategy's failure mode.
  std::vector<double> tasks(100, 0.1);
  tasks[50] = 50.0;
  for (uint32_t slots : {2u, 10u, 100u}) {
    auto res = ListSchedule(tasks, slots);
    EXPECT_GE(res.makespan_s, 50.0) << slots;
    EXPECT_LE(res.makespan_s, 50.0 + 10.0 / slots + 0.2) << slots;
  }
}

TEST(SchedulerTest, SlowSlotStretchesItsTasks) {
  std::vector<double> speed{1.0, 0.5};
  auto res = ListSchedule({1.0, 1.0}, 2, &speed);
  EXPECT_DOUBLE_EQ(res.makespan_s, 2.0);  // slot 1 runs its task at half
}

TEST(SchedulerTest, EmptyTaskList) {
  auto res = ListSchedule({}, 4);
  EXPECT_DOUBLE_EQ(res.makespan_s, 0.0);
}

TEST(SchedulerTest, MoreSlotsNeverSlower) {
  std::vector<double> tasks;
  for (int i = 0; i < 57; ++i) tasks.push_back(0.5 + (i % 7) * 0.3);
  double prev = 1e18;
  for (uint32_t slots : {1u, 2u, 4u, 8u, 16u, 64u}) {
    auto res = ListSchedule(tasks, slots);
    EXPECT_LE(res.makespan_s, prev + 1e-9);
    prev = res.makespan_s;
  }
}

class ErSimTest : public ::testing::Test {
 protected:
  bdm::Bdm SkewedBdm(double skew, uint64_t n = 20000, uint32_t m = 20) {
    gen::SkewConfig cfg;
    cfg.num_entities = n;
    cfg.num_blocks = 100;
    cfg.skew = skew;
    auto entities = gen::GenerateSkewed(cfg);
    EXPECT_TRUE(entities.ok());
    std::vector<std::vector<std::string>> keys(m);
    size_t i = 0;
    for (const auto& e : *entities) {
      keys[i++ % m].push_back(e.fields[gen::kSkewBlockField]);
    }
    auto bdm = bdm::Bdm::FromKeys(keys);
    EXPECT_TRUE(bdm.ok());
    return *bdm;
  }
};

TEST_F(ErSimTest, SkewCripplesBasicButNotTheBalancers) {
  auto bdm = SkewedBdm(1.0);
  ClusterConfig cluster;
  cluster.num_nodes = 10;
  CostModel cost;
  auto basic =
      SimulateEr(lb::StrategyKind::kBasic, bdm, 100, cluster, cost);
  auto split =
      SimulateEr(lb::StrategyKind::kBlockSplit, bdm, 100, cluster, cost);
  auto range =
      SimulateEr(lb::StrategyKind::kPairRange, bdm, 100, cluster, cost);
  ASSERT_TRUE(basic.ok());
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(range.ok());
  // Figure 9's headline: at s=1, Basic is many times slower per pair.
  EXPECT_GT(basic->match_reduce_phase_s,
            3 * split->match_reduce_phase_s);
  EXPECT_GT(basic->match_reduce_phase_s,
            3 * range->match_reduce_phase_s);
  // The balanced strategies pay the BDM job, Basic does not.
  EXPECT_DOUBLE_EQ(basic->bdm_job_s, 0.0);
  EXPECT_GT(split->bdm_job_s, 0.0);
}

TEST_F(ErSimTest, UniformDataFavorsBasicSlightly) {
  auto bdm = SkewedBdm(0.0);
  ClusterConfig cluster;
  cluster.num_nodes = 10;
  CostModel cost;
  auto basic =
      SimulateEr(lb::StrategyKind::kBasic, bdm, 100, cluster, cost);
  auto split =
      SimulateEr(lb::StrategyKind::kBlockSplit, bdm, 100, cluster, cost);
  ASSERT_TRUE(basic.ok());
  ASSERT_TRUE(split.ok());
  // "the Basic strategy is the fastest for a uniform block distribution
  // (s=0) because it does not suffer from the additional BDM computation".
  EXPECT_LT(basic->total_s, split->total_s);
}

TEST_F(ErSimTest, BalancedStrategiesScaleWithNodes) {
  auto bdm = SkewedBdm(0.8, 50000, 40);
  CostModel cost;
  double prev_split = 1e18, prev_range = 1e18;
  for (uint32_t n : {1u, 2u, 5u, 10u, 20u}) {
    ClusterConfig cluster;
    cluster.num_nodes = n;
    auto split = SimulateEr(lb::StrategyKind::kBlockSplit, bdm, 10 * n,
                            cluster, cost);
    auto range = SimulateEr(lb::StrategyKind::kPairRange, bdm, 10 * n,
                            cluster, cost);
    ASSERT_TRUE(split.ok());
    ASSERT_TRUE(range.ok());
    EXPECT_LT(split->total_s, prev_split) << "n=" << n;
    EXPECT_LT(range->total_s, prev_range) << "n=" << n;
    prev_split = split->total_s;
    prev_range = range->total_s;
  }
}

TEST_F(ErSimTest, BasicSaturatesWithNodes) {
  auto bdm = SkewedBdm(1.0, 50000, 40);
  CostModel cost;
  ClusterConfig two, hundred;
  two.num_nodes = 2;
  hundred.num_nodes = 100;
  auto at2 = SimulateEr(lb::StrategyKind::kBasic, bdm, 20, two, cost);
  auto at100 =
      SimulateEr(lb::StrategyKind::kBasic, bdm, 1000, hundred, cost);
  ASSERT_TRUE(at2.ok());
  ASSERT_TRUE(at100.ok());
  // "Basic does not scale for more than two nodes": 50x more nodes must
  // not even give 3x speedup (the largest block runs on one slot).
  EXPECT_GT(at100->total_s, at2->total_s / 3);
}

TEST_F(ErSimTest, PairRangeImbalanceIsMinimal) {
  auto bdm = SkewedBdm(1.0);
  ClusterConfig cluster;
  CostModel cost;
  auto range =
      SimulateEr(lb::StrategyKind::kPairRange, bdm, 100, cluster, cost);
  auto basic =
      SimulateEr(lb::StrategyKind::kBasic, bdm, 100, cluster, cost);
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(basic.ok());
  EXPECT_LT(range->reduce_task_imbalance, 1.01);
  EXPECT_GT(basic->reduce_task_imbalance, 10.0);
}

TEST_F(ErSimTest, HeterogeneityDrawsAreDeterministic) {
  ClusterConfig cluster;
  cluster.num_nodes = 5;
  CostModel cost;
  cost.heterogeneity_sigma = 0.2;
  std::vector<double> m1, r1, m2, r2;
  DrawSlotSpeeds(cluster, cost, &m1, &r1);
  DrawSlotSpeeds(cluster, cost, &m2, &r2);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(r1, r2);
  ASSERT_EQ(m1.size(), cluster.TotalMapSlots());
  // Both slots of one node share a speed.
  for (uint32_t node = 0; node < 5; ++node) {
    EXPECT_DOUBLE_EQ(m1[2 * node], m1[2 * node + 1]);
  }
}

TEST_F(ErSimTest, InvalidArgumentsRejected) {
  auto bdm = SkewedBdm(0.0, 1000, 2);
  ClusterConfig cluster;
  CostModel cost;
  EXPECT_FALSE(
      SimulateEr(lb::StrategyKind::kBasic, bdm, 0, cluster, cost).ok());
  cluster.num_nodes = 0;
  EXPECT_FALSE(
      SimulateEr(lb::StrategyKind::kBasic, bdm, 10, cluster, cost).ok());
}

}  // namespace
}  // namespace sim
}  // namespace erlb
