#include "lb/block_split_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bdm/bdm.h"
#include "paper_example.h"

namespace erlb {
namespace lb {
namespace {

bdm::Bdm PaperBdm() {
  auto bdm = bdm::Bdm::FromKeys({{"w", "w", "x", "y", "y", "z", "z"},
                                 {"w", "w", "x", "y", "z", "z", "z"}});
  EXPECT_TRUE(bdm.ok());
  return *bdm;
}

TEST(BlockSplitPlanTest, PaperExampleOnlyZIsSplit) {
  auto plan = BlockSplitPlan::Build(PaperBdm(), 3);
  ASSERT_TRUE(plan.ok());
  // avg workload = P/r = 20/3; only Φ3 (10 comparisons) exceeds it.
  EXPECT_FALSE(plan->IsSplit(0));
  EXPECT_FALSE(plan->IsSplit(1));
  EXPECT_FALSE(plan->IsSplit(2));
  EXPECT_TRUE(plan->IsSplit(3));
}

TEST(BlockSplitPlanTest, PaperExampleMatchTasks) {
  auto plan = BlockSplitPlan::Build(PaperBdm(), 3);
  ASSERT_TRUE(plan.ok());
  // "the three match tasks 3.0, 3.0×1, and 3.1 that account for 1, 6, and
  // 3 comparisons" plus the three unsplit tasks 0.*, 1.*, 2.*.
  ASSERT_EQ(plan->tasks().size(), 6u);
  // Sorted descending: 0.*(6), 3.0×1(6), 2.*(3), 3.1(3), 1.*(1), 3.0(1).
  const auto& t = plan->tasks();
  EXPECT_EQ(t[0].block, 0u);
  EXPECT_EQ(t[0].comparisons, 6u);
  EXPECT_EQ(t[1].block, 3u);
  EXPECT_EQ(t[1].pi, 1u);
  EXPECT_EQ(t[1].pj, 0u);
  EXPECT_EQ(t[1].comparisons, 6u);
  EXPECT_EQ(t[2].block, 2u);
  EXPECT_EQ(t[2].comparisons, 3u);
  EXPECT_EQ(t[3].block, 3u);
  EXPECT_EQ(t[3].pi, 1u);
  EXPECT_EQ(t[3].pj, 1u);
  EXPECT_EQ(t[3].comparisons, 3u);
  EXPECT_EQ(t[4].block, 1u);
  EXPECT_EQ(t[4].comparisons, 1u);
  EXPECT_EQ(t[5].block, 3u);
  EXPECT_EQ(t[5].pi, 0u);
  EXPECT_EQ(t[5].pj, 0u);
  EXPECT_EQ(t[5].comparisons, 1u);
}

TEST(BlockSplitPlanTest, PaperExampleBalancedAssignment) {
  auto plan = BlockSplitPlan::Build(PaperBdm(), 3);
  ASSERT_TRUE(plan.ok());
  // "Each reduce task has to process between six and seven comparisons."
  const auto& loads = plan->comparisons_per_reduce_task();
  ASSERT_EQ(loads.size(), 3u);
  uint64_t total = 0;
  for (uint64_t l : loads) {
    EXPECT_GE(l, 6u);
    EXPECT_LE(l, 7u);
    total += l;
  }
  EXPECT_EQ(total, 20u);
}

TEST(BlockSplitPlanTest, MatchTasksCoverAllPairsExactlyOnce) {
  // Σ task comparisons == P for arbitrary BDMs.
  for (uint32_t r : {1u, 2u, 3u, 5u, 10u, 40u}) {
    auto bdm = bdm::Bdm::FromKeys(
        {{"a", "a", "a", "b", "c", "c", "d", "d", "d", "d"},
         {"a", "a", "b", "c", "d", "d", "d", "e"},
         {"a", "d", "d", "f", "f", "f"}});
    ASSERT_TRUE(bdm.ok());
    auto plan = BlockSplitPlan::Build(*bdm, r);
    ASSERT_TRUE(plan.ok());
    uint64_t covered = 0;
    for (const auto& t : plan->tasks()) covered += t.comparisons;
    EXPECT_EQ(covered, bdm->TotalPairs()) << "r=" << r;
    uint64_t assigned = 0;
    for (uint64_t l : plan->comparisons_per_reduce_task()) assigned += l;
    EXPECT_EQ(assigned, bdm->TotalPairs()) << "r=" << r;
  }
}

TEST(BlockSplitPlanTest, ReduceTaskLookupConsistent) {
  auto plan = BlockSplitPlan::Build(PaperBdm(), 3);
  ASSERT_TRUE(plan.ok());
  for (const auto& t : plan->tasks()) {
    auto rt = plan->ReduceTaskFor(t.block, t.pi, t.pj);
    ASSERT_TRUE(rt.has_value());
    EXPECT_EQ(*rt, t.reduce_task);
  }
  EXPECT_FALSE(plan->ReduceTaskFor(99, 0, 0).has_value());
}

TEST(BlockSplitPlanTest, PaperExampleEmissions) {
  auto plan = BlockSplitPlan::Build(PaperBdm(), 3);
  ASSERT_TRUE(plan.ok());
  // "The replication of the five entities for the split block leads to 19
  // key-value pairs for the 14 input entities": unsplit entities emit 1,
  // split-block entities emit m=2.
  EXPECT_EQ(plan->EmissionsPerEntity(0, 0), 1u);
  EXPECT_EQ(plan->EmissionsPerEntity(1, 1), 1u);
  EXPECT_EQ(plan->EmissionsPerEntity(3, 0), 2u);
  EXPECT_EQ(plan->EmissionsPerEntity(3, 1), 2u);
  auto bdm = PaperBdm();
  uint64_t total = 0;
  for (uint32_t k = 0; k < bdm.num_blocks(); ++k) {
    for (uint32_t p = 0; p < bdm.num_partitions(); ++p) {
      total += bdm.Size(k, p) * plan->EmissionsPerEntity(k, p);
    }
  }
  EXPECT_EQ(total, 19u);
}

TEST(BlockSplitPlanTest, ZeroComparisonBlocksEmitNothing) {
  auto bdm = bdm::Bdm::FromKeys({{"solo", "a", "a"}});
  ASSERT_TRUE(bdm.ok());
  auto plan = BlockSplitPlan::Build(*bdm, 2);
  ASSERT_TRUE(plan.ok());
  auto solo = bdm->BlockIndex("solo");
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(plan->EmissionsPerEntity(*solo, 0), 0u);
  EXPECT_FALSE(plan->ReduceTaskFor(*solo, 0, 0).has_value());
}

TEST(BlockSplitPlanTest, SplitSkipsEmptyPartitions) {
  // Block "z" only present in partitions 0 and 2 of 3; with r large
  // enough to force a split, no task may reference partition 1.
  auto bdm = bdm::Bdm::FromKeys({{"z", "z", "z"}, {"q"}, {"z", "z", "z"}});
  ASSERT_TRUE(bdm.ok());
  auto plan = BlockSplitPlan::Build(*bdm, 8);
  ASSERT_TRUE(plan.ok());
  auto z = bdm->BlockIndex("z");
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(plan->IsSplit(*z));
  for (const auto& t : plan->tasks()) {
    if (t.block != *z) continue;
    EXPECT_NE(t.pi, 1u);
    EXPECT_NE(t.pj, 1u);
  }
  EXPECT_EQ(plan->EmissionsPerEntity(*z, 1), 0u);
}

TEST(BlockSplitPlanTest, GreedyNeverWorseThanRoundRobinOnSkew) {
  auto bdm = bdm::Bdm::FromKeys(
      {{"a", "a", "a", "a", "a", "a", "b", "b", "c", "d", "e", "f"},
       {"a", "a", "a", "b", "c", "c", "d", "e", "f", "g"}});
  ASSERT_TRUE(bdm.ok());
  for (uint32_t r : {2u, 3u, 4u}) {
    auto greedy =
        BlockSplitPlan::Build(*bdm, r, TaskAssignment::kGreedyLpt);
    auto rr = BlockSplitPlan::Build(*bdm, r, TaskAssignment::kRoundRobin);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(rr.ok());
    auto max_load = [](const BlockSplitPlan& p) {
      uint64_t mx = 0;
      for (uint64_t l : p.comparisons_per_reduce_task()) {
        mx = std::max(mx, l);
      }
      return mx;
    };
    EXPECT_LE(max_load(*greedy), max_load(*rr)) << "r=" << r;
  }
}

TEST(BlockSplitPlanTest, SingleReduceTaskGetsEverything) {
  auto plan = BlockSplitPlan::Build(PaperBdm(), 1);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->comparisons_per_reduce_task().size(), 1u);
  EXPECT_EQ(plan->comparisons_per_reduce_task()[0], 20u);
  // avg = 20, no block exceeds it -> nothing is split.
  for (uint32_t k = 0; k < 4; ++k) EXPECT_FALSE(plan->IsSplit(k));
}

TEST(BlockSplitPlanTest, RejectsZeroReduceTasks) {
  EXPECT_TRUE(
      BlockSplitPlan::Build(PaperBdm(), 0).status().IsInvalidArgument());
}

// ---- two-source --------------------------------------------------------

bdm::Bdm TwoSourceBdm() {
  auto tags = testing_util::PaperTwoSourceTags();
  auto bdm = bdm::Bdm::FromKeys({{"w", "w", "z", "z", "y", "x"},
                                 {"w", "w", "z", "z"},
                                 {"z", "y", "y"}},
                                &tags);
  EXPECT_TRUE(bdm.ok());
  return *bdm;
}

TEST(BlockSplitPlanTwoSourceTest, PaperAppendixExample) {
  // "The BDM indicates 12 overall pairs so that the average reduce
  // workload equals 4 pairs. The largest block Φ3 is therefore subject to
  // split because it has to process 6 pairs. The split results in the two
  // match tasks 3.0×1 and 3.0×2."
  auto plan = BlockSplitPlan::Build(TwoSourceBdm(), 3);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->comparisons_per_reduce_task_avg(), 4u);
  EXPECT_TRUE(plan->IsSplit(3));
  EXPECT_FALSE(plan->IsSplit(0));
  EXPECT_FALSE(plan->IsSplit(2));

  // Tasks ordered: 0.*(4), 3.0×1(4), 2.*(2), 3.0×2(2).
  const auto& t = plan->tasks();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0].block, 0u);
  EXPECT_EQ(t[0].comparisons, 4u);
  EXPECT_EQ(t[1].block, 3u);
  EXPECT_EQ(t[1].pi, 0u);  // R partition Π0
  EXPECT_EQ(t[1].pj, 1u);  // S partition Π1
  EXPECT_EQ(t[1].comparisons, 4u);
  EXPECT_EQ(t[2].block, 2u);
  EXPECT_EQ(t[2].comparisons, 2u);
  EXPECT_EQ(t[3].block, 3u);
  EXPECT_EQ(t[3].pj, 2u);  // S partition Π2
  EXPECT_EQ(t[3].comparisons, 2u);

  // Assignment: r0 <- 0.*, r1 <- 3.0×1, r2 <- 2.*, r2 <- 3.0×2.
  EXPECT_EQ(t[0].reduce_task, 0u);
  EXPECT_EQ(t[1].reduce_task, 1u);
  EXPECT_EQ(t[2].reduce_task, 2u);
  EXPECT_EQ(t[3].reduce_task, 2u);
}

TEST(BlockSplitPlanTwoSourceTest, NoSelfTasksForSplitBlocks) {
  auto plan = BlockSplitPlan::Build(TwoSourceBdm(), 12);
  ASSERT_TRUE(plan.ok());
  for (const auto& t : plan->tasks()) {
    if (!plan->IsSplit(t.block)) continue;
    // Every split task pairs an R partition (0) with an S partition (1,2).
    EXPECT_EQ(t.pi, 0u);
    EXPECT_TRUE(t.pj == 1u || t.pj == 2u);
  }
}

TEST(BlockSplitPlanTwoSourceTest, CoversAllCrossPairs) {
  for (uint32_t r : {1u, 2u, 3u, 6u, 20u}) {
    auto plan = BlockSplitPlan::Build(TwoSourceBdm(), r);
    ASSERT_TRUE(plan.ok());
    uint64_t covered = 0;
    for (const auto& t : plan->tasks()) covered += t.comparisons;
    EXPECT_EQ(covered, 12u) << "r=" << r;
  }
}

}  // namespace
}  // namespace lb
}  // namespace erlb
