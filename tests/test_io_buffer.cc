// Buffered file I/O and scoped temp dirs (common/io_buffer.h): byte-exact
// round trips across buffer boundaries, error injection, and directory
// lifetime.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/io_buffer.h"

namespace erlb {
namespace {

namespace fs = std::filesystem;

class IoBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = ScopedTempDir::Make();
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    dir_.emplace(std::move(dir).ValueOrDie());
  }

  std::string Path(const std::string& name) const {
    return dir_->path() + "/" + name;
  }

  std::optional<ScopedTempDir> dir_;
};

std::string PatternData(size_t n) {
  std::string data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.push_back(static_cast<char>('a' + (i * 31 + i / 7) % 26));
  }
  return data;
}

TEST_F(IoBufferTest, RoundTripAcrossBufferBoundaries) {
  // A tiny 7-byte buffer forces many flushes/refills; appends of varied
  // sizes cross the boundary in every alignment.
  const std::string data = PatternData(10000);
  const std::string path = Path("data.bin");
  {
    BufferedFileWriter w;
    ASSERT_TRUE(w.Open(path, 7).ok());
    size_t pos = 0;
    size_t step = 1;
    while (pos < data.size()) {
      size_t n = std::min(step, data.size() - pos);
      ASSERT_TRUE(w.Append(data.data() + pos, n).ok());
      pos += n;
      step = step % 23 + 1;
    }
    EXPECT_EQ(w.bytes_written(), data.size());
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_EQ(fs::file_size(path), data.size());

  BufferedFileReader r;
  ASSERT_TRUE(r.Open(path, 7).ok());
  std::string read_back(data.size(), '\0');
  size_t pos = 0;
  size_t step = 5;
  while (pos < data.size()) {
    size_t n = std::min(step, data.size() - pos);
    ASSERT_TRUE(r.ReadExact(read_back.data() + pos, n).ok());
    pos += n;
    step = step % 19 + 1;
  }
  EXPECT_EQ(read_back, data);
  // At EOF further reads return 0 bytes.
  char extra;
  auto got = r.Read(&extra, 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 0u);
}

TEST_F(IoBufferTest, LargeAppendBypassesBuffer) {
  const std::string data = PatternData(1 << 16);
  const std::string path = Path("large.bin");
  BufferedFileWriter w;
  ASSERT_TRUE(w.Open(path, 64).ok());
  ASSERT_TRUE(w.Append("hdr", 3).ok());
  ASSERT_TRUE(w.Append(data.data(), data.size()).ok());  // >> buffer
  ASSERT_TRUE(w.Close().ok());

  BufferedFileReader r;
  ASSERT_TRUE(r.Open(path, 64).ok());
  std::string all(3 + data.size(), '\0');
  ASSERT_TRUE(r.ReadExact(all.data(), all.size()).ok());
  EXPECT_EQ(all.substr(0, 3), "hdr");
  EXPECT_EQ(all.substr(3), data);
}

TEST_F(IoBufferTest, SeekRepositionsReads) {
  const std::string data = PatternData(4096);
  const std::string path = Path("seek.bin");
  BufferedFileWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.Append(data.data(), data.size()).ok());
  ASSERT_TRUE(w.Close().ok());

  BufferedFileReader r;
  ASSERT_TRUE(r.Open(path, 128).ok());
  char buf[16];
  ASSERT_TRUE(r.Seek(1000).ok());
  ASSERT_TRUE(r.ReadExact(buf, sizeof(buf)).ok());
  EXPECT_EQ(std::string(buf, sizeof(buf)), data.substr(1000, 16));
  // Backwards, outside the buffer.
  ASSERT_TRUE(r.Seek(3).ok());
  ASSERT_TRUE(r.ReadExact(buf, sizeof(buf)).ok());
  EXPECT_EQ(std::string(buf, sizeof(buf)), data.substr(3, 16));
  EXPECT_EQ(r.position(), 19u);
}

TEST_F(IoBufferTest, ReadExactPastEofFails) {
  const std::string path = Path("short.bin");
  BufferedFileWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.Append("xyz", 3).ok());
  ASSERT_TRUE(w.Close().ok());

  BufferedFileReader r;
  ASSERT_TRUE(r.Open(path).ok());
  char buf[8];
  Status s = r.ReadExact(buf, sizeof(buf));
  EXPECT_FALSE(s.ok());
}

TEST_F(IoBufferTest, InjectedFailureIsStickyAndByteExact) {
  const std::string path = Path("fail.bin");
  BufferedFileWriter w;
  ASSERT_TRUE(w.Open(path, 16).ok());
  w.InjectFailureAfter(100);
  std::string chunk(40, 'x');
  EXPECT_TRUE(w.Append(chunk.data(), chunk.size()).ok());   // 40
  EXPECT_TRUE(w.Append(chunk.data(), chunk.size()).ok());   // 80
  Status s = w.Append(chunk.data(), chunk.size());          // would be 120
  EXPECT_FALSE(s.ok());
  // Sticky: later appends and Close report the same failure.
  EXPECT_FALSE(w.Append("a", 1).ok());
  EXPECT_FALSE(w.Close().ok());
}

TEST_F(IoBufferTest, OpenMissingFileFails) {
  BufferedFileReader r;
  EXPECT_FALSE(r.Open(Path("nope/missing.bin")).ok());
  BufferedFileWriter w;
  EXPECT_FALSE(w.Open(Path("nope/missing.bin")).ok());
}

TEST(ScopedTempDirTest, CreatesAndRemovesRecursively) {
  std::string path;
  {
    auto dir = ScopedTempDir::Make();
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    path = dir->path();
    EXPECT_TRUE(fs::is_directory(path));
    // Populate with nested content; removal must still succeed.
    ASSERT_TRUE(fs::create_directories(fs::path(path) / "a" / "b"));
    BufferedFileWriter w;
    ASSERT_TRUE(w.Open(path + "/a/b/f.bin").ok());
    ASSERT_TRUE(w.Append("data", 4).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST(ScopedTempDirTest, MakeUnderCustomBase) {
  auto base = ScopedTempDir::Make();
  ASSERT_TRUE(base.ok());
  std::string inner_path;
  {
    auto inner = ScopedTempDir::Make(base->path(), "spill");
    ASSERT_TRUE(inner.ok()) << inner.status().ToString();
    inner_path = inner->path();
    EXPECT_TRUE(fs::is_directory(inner_path));
    EXPECT_EQ(fs::path(inner_path).parent_path(), fs::path(base->path()));
  }
  EXPECT_FALSE(fs::exists(inner_path));
  EXPECT_TRUE(fs::is_directory(base->path()));
}

TEST(ScopedTempDirTest, DistinctDirsPerMake) {
  auto a = ScopedTempDir::Make();
  auto b = ScopedTempDir::Make();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->path(), b->path());
}

TEST(ScopedTempDirTest, MoveTransfersOwnership) {
  auto dir = ScopedTempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->path();
  {
    ScopedTempDir moved = std::move(dir).ValueOrDie();
    EXPECT_EQ(moved.path(), path);
    EXPECT_TRUE(fs::is_directory(path));
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST(SweepStaleTempDirsTest, RemovesDeadPidDirsKeepsLiveAndForeign) {
  auto base = ScopedTempDir::Make();
  ASSERT_TRUE(base.ok());

  // An orphan left by a process that no longer exists. Pid 1 is always
  // alive, so synthesize a dead one: walk down from a huge pid until
  // kill(pid, 0) says ESRCH (pid_t is at least 32-bit on Linux and
  // pid_max defaults far lower, so the first candidate already works).
  const std::string dead = base->path() + "/erlb-spill-999999999-0-abc";
  ASSERT_TRUE(fs::create_directories(dead + "/inner"));

  // A dir owned by this (live) process must never be swept.
  const std::string live = base->path() + "/erlb-spill-" +
                           std::to_string(::getpid()) + "-1-def";
  ASSERT_TRUE(fs::create_directories(live));

  // Foreign names (no parseable pid) are age-gated: a fresh one stays.
  const std::string foreign = base->path() + "/erlb-spill-notapid";
  ASSERT_TRUE(fs::create_directories(foreign));

  // A different prefix is out of scope entirely.
  const std::string other = base->path() + "/other-999999999-0-xyz";
  ASSERT_TRUE(fs::create_directories(other));

  auto removed = SweepStaleTempDirs(base->path(), "erlb-spill");
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(*removed, 1);
  EXPECT_FALSE(fs::exists(dead));
  EXPECT_TRUE(fs::exists(live));
  EXPECT_TRUE(fs::exists(foreign));
  EXPECT_TRUE(fs::exists(other));

  // An old foreign dir falls to the age gate.
  auto removed_aged = SweepStaleTempDirs(base->path(), "erlb-spill",
                                         /*max_age_seconds=*/0);
  ASSERT_TRUE(removed_aged.ok());
  EXPECT_EQ(*removed_aged, 1);
  EXPECT_FALSE(fs::exists(foreign));
  EXPECT_TRUE(fs::exists(live));
}

TEST(SweepStaleTempDirsTest, MissingBaseIsZero) {
  auto removed = SweepStaleTempDirs("/nonexistent/sweep/base", "erlb");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 0);
}

// ---- Multi-process temp-dir sharing (coordinator + forked workers) -------

// A forked worker inherits the coordinator's ScopedTempDir by memory
// copy; when the child's copy destructs, the shared job directory must
// survive — only the creating pid may remove it.
TEST(ScopedTempDirTest, ForkedChildDestructionIsNoOp) {
  auto dir = ScopedTempDir::Make();
  ASSERT_TRUE(dir.ok());
  const std::string path = dir->path();
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Run the inherited copy's destructor in the child, then report
    // whether the directory survived it.
    { ScopedTempDir inherited = std::move(*dir); }
    _exit(fs::is_directory(path) ? 0 : 1);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0) << "child removed the shared dir";
  EXPECT_TRUE(fs::is_directory(path));
  // The parent (owner) still removes it normally.
  { ScopedTempDir owned = std::move(*dir); }
  EXPECT_FALSE(fs::exists(path));
}

// A job root whose creating coordinator died stays intact while any
// claimant pid is alive — exactly the window where surviving workers
// are still spilling into it.
TEST(SweepStaleTempDirsTest, LiveClaimProtectsDeadOwnersDir) {
  auto base = ScopedTempDir::Make();
  ASSERT_TRUE(base.ok());
  const std::string dead_owner =
      base->path() + "/erlb-spill-999999999-0-abc";
  ASSERT_TRUE(fs::create_directories(dead_owner));
  // Two live claimants (this process and pid 1) share the root.
  ASSERT_TRUE(ClaimTempDirForPid(dead_owner).ok());
  ASSERT_TRUE(ClaimTempDirForPid(dead_owner, 1).ok());
  // Claims are idempotent.
  ASSERT_TRUE(ClaimTempDirForPid(dead_owner).ok());

  auto removed = SweepStaleTempDirs(base->path(), "erlb-spill");
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(*removed, 0);
  EXPECT_TRUE(fs::exists(dead_owner));

  // Releasing one claim is not enough while the other pid lives.
  ReleaseTempDirClaim(dead_owner);
  removed = SweepStaleTempDirs(base->path(), "erlb-spill");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 0);
  EXPECT_TRUE(fs::exists(dead_owner));
}

TEST(SweepStaleTempDirsTest, DeadClaimDoesNotProtect) {
  auto base = ScopedTempDir::Make();
  ASSERT_TRUE(base.ok());
  const std::string dead_owner =
      base->path() + "/erlb-spill-999999999-0-abc";
  ASSERT_TRUE(fs::create_directories(dead_owner));
  // The only claim belongs to a pid that no longer exists: the claim
  // must not resurrect the orphan.
  ASSERT_TRUE(ClaimTempDirForPid(dead_owner, 999999998).ok());
  auto removed = SweepStaleTempDirs(base->path(), "erlb-spill");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1);
  EXPECT_FALSE(fs::exists(dead_owner));
}

TEST(SweepStaleTempDirsTest, ReleasedClaimRestoresSweepability) {
  auto base = ScopedTempDir::Make();
  ASSERT_TRUE(base.ok());
  const std::string dead_owner =
      base->path() + "/erlb-spill-999999999-0-abc";
  ASSERT_TRUE(fs::create_directories(dead_owner));
  ASSERT_TRUE(ClaimTempDirForPid(dead_owner).ok());
  auto removed = SweepStaleTempDirs(base->path(), "erlb-spill");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 0);

  ReleaseTempDirClaim(dead_owner);
  removed = SweepStaleTempDirs(base->path(), "erlb-spill");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1);
  EXPECT_FALSE(fs::exists(dead_owner));
}

}  // namespace
}  // namespace erlb
