// Tests for the minimal JSON model (common/json.h): parsing, escaping,
// lossless integer round-trips, error reporting, and byte-stable
// re-serialization.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "common/json.h"

namespace erlb {
namespace {

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->AsBool(), true);
  EXPECT_EQ(Json::Parse("false")->AsBool(), false);
  EXPECT_EQ(Json::Parse("42")->AsUint64(), 42u);
  EXPECT_EQ(Json::Parse("-17")->AsInt64(), -17);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5")->AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, ParsesNestedStructures) {
  auto doc = Json::Parse(R"({"a": [1, 2, {"b": null}], "c": "x"})");
  ASSERT_TRUE(doc.ok());
  const Json* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->AsArray()[0].AsUint64(), 1u);
  EXPECT_TRUE(a->AsArray()[2].Find("b")->is_null());
  EXPECT_EQ(doc->Find("c")->AsString(), "x");
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonParseTest, Uint64RoundTripsLosslessly) {
  const uint64_t big = std::numeric_limits<uint64_t>::max();
  std::string text = std::to_string(big);
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsUint64(), big);
  EXPECT_EQ(parsed->Dump(), text);
  // 2^53 + 1 is not representable as a double; must stay exact.
  auto above_double = Json::Parse("9007199254740993");
  ASSERT_TRUE(above_double.ok());
  EXPECT_EQ(above_double->AsUint64(), 9007199254740993ull);
  EXPECT_EQ(above_double->Dump(), "9007199254740993");
}

TEST(JsonParseTest, StringEscapes) {
  auto parsed = Json::Parse(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\n\tA");
  // Serializing escapes again.
  Json j(std::string("line1\nline2\t\"q\""));
  EXPECT_EQ(j.Dump(), R"("line1\nline2\t\"q\"")");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());  // trailing garbage
  EXPECT_FALSE(Json::Parse("nulll").ok());
}

TEST(JsonDumpTest, CompactAndPretty) {
  Json obj{Json::Object{}};
  obj.Add("n", Json(uint64_t{1}));
  Json::Array arr;
  arr.emplace_back(uint64_t{2});
  arr.emplace_back(uint64_t{3});
  obj.Add("a", Json(std::move(arr)));
  EXPECT_EQ(obj.Dump(), R"({"n":1,"a":[2,3]})");
  EXPECT_EQ(obj.Dump(2), "{\n  \"n\": 1,\n  \"a\": [\n    2,\n    3\n  ]\n}\n");
}

TEST(JsonDumpTest, ReserializationIsByteStable) {
  const char* text =
      R"({"s": "x", "n": 123456789012345678, "d": 0.25, "b": true,)"
      R"( "v": [1, -2, null], "o": {"inner": []}})";
  auto doc = Json::Parse(text);
  ASSERT_TRUE(doc.ok());
  std::string once = doc->Dump(2);
  auto again = Json::Parse(once);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(once, again->Dump(2));
  EXPECT_TRUE(*doc == *again);
}

TEST(JsonDumpTest, EmptyContainers) {
  EXPECT_EQ(Json(Json::Array{}).Dump(2), "[]\n");
  EXPECT_EQ(Json(Json::Object{}).Dump(2), "{}\n");
}

}  // namespace
}  // namespace erlb
