#include "mr/job.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "common/string_util.h"
#include "mr/side_store.h"

namespace erlb {
namespace mr {
namespace {

// ---------------------------------------------------------------------
// Word count: the canonical semantics check.
// ---------------------------------------------------------------------

class WordCountMapper : public Mapper<int, std::string, std::string, int> {
 public:
  void Map(const int&, const std::string& line,
           MapContext<std::string, int>* ctx) override {
    for (const auto& w : Split(line, ' ')) {
      if (!w.empty()) ctx->Emit(w, 1);
    }
  }
};

class SumReducer : public Reducer<std::string, int, std::string, int> {
 public:
  void Reduce(std::span<const std::pair<std::string, int>> group,
              ReduceContext<std::string, int>* ctx) override {
    int sum = 0;
    for (const auto& [k, v] : group) sum += v;
    ctx->Emit(group.front().first, sum);
  }
};

JobSpec<int, std::string, std::string, int, std::string, int>
WordCountSpec(uint32_t r) {
  JobSpec<int, std::string, std::string, int, std::string, int> spec;
  spec.num_reduce_tasks = r;
  spec.mapper_factory = [](const TaskContext&) {
    return std::make_unique<WordCountMapper>();
  };
  spec.reducer_factory = [](const TaskContext&) {
    return std::make_unique<SumReducer>();
  };
  spec.partitioner = [](const std::string& k, uint32_t r) {
    return static_cast<uint32_t>(Fnv1a64(k) % r);
  };
  spec.key_less = [](const std::string& a, const std::string& b) {
    return a < b;
  };
  spec.group_equal = [](const std::string& a, const std::string& b) {
    return a == b;
  };
  return spec;
}

std::vector<std::vector<std::pair<int, std::string>>> WordInput() {
  return {{{0, "a b a"}, {1, "c a"}}, {{0, "b a c c"}}};
}

std::map<std::string, int> CollectCounts(
    const JobResult<std::string, int>& result) {
  std::map<std::string, int> out;
  for (const auto& [k, v] : result.MergedOutput()) out[k] = v;
  return out;
}

TEST(MrJobTest, WordCountSingleReduceTask) {
  JobRunner runner(2);
  auto result = runner.Run(WordCountSpec(1), WordInput());
  auto counts = CollectCounts(result);
  EXPECT_EQ(counts["a"], 4);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 3);
}

TEST(MrJobTest, WordCountManyReduceTasks) {
  JobRunner runner(4);
  for (uint32_t r : {2u, 3u, 7u, 16u}) {
    auto result = runner.Run(WordCountSpec(r), WordInput());
    auto counts = CollectCounts(result);
    EXPECT_EQ(counts["a"], 4) << "r=" << r;
    EXPECT_EQ(counts["b"], 2) << "r=" << r;
    EXPECT_EQ(counts["c"], 3) << "r=" << r;
    EXPECT_EQ(result.outputs_per_reduce_task.size(), r);
  }
}

TEST(MrJobTest, ResultIndependentOfWorkerCount) {
  auto r1 = JobRunner(1).Run(WordCountSpec(4), WordInput());
  auto r8 = JobRunner(8).Run(WordCountSpec(4), WordInput());
  EXPECT_EQ(CollectCounts(r1), CollectCounts(r8));
}

TEST(MrJobTest, MapMetricsCountRecordsAndOutput) {
  JobRunner runner(2);
  auto result = runner.Run(WordCountSpec(2), WordInput());
  ASSERT_EQ(result.metrics.map_tasks.size(), 2u);
  EXPECT_EQ(result.metrics.map_tasks[0].input_records, 2);
  EXPECT_EQ(result.metrics.map_tasks[0].output_records, 5);  // "a b a c a"
  EXPECT_EQ(result.metrics.map_tasks[1].input_records, 1);
  EXPECT_EQ(result.metrics.map_tasks[1].output_records, 4);
  EXPECT_EQ(result.metrics.TotalMapOutputPairs(), 9);
  EXPECT_EQ(result.metrics.TotalMapInputRecords(), 3);
}

TEST(MrJobTest, ReduceMetricsCountGroups) {
  JobRunner runner(2);
  auto result = runner.Run(WordCountSpec(1), WordInput());
  ASSERT_EQ(result.metrics.reduce_tasks.size(), 1u);
  EXPECT_EQ(result.metrics.reduce_tasks[0].groups, 3);  // a, b, c
  EXPECT_EQ(result.metrics.reduce_tasks[0].input_records, 9);
  EXPECT_EQ(result.metrics.reduce_tasks[0].output_records, 3);
}

TEST(MrJobTest, CombinerReducesShuffleVolume) {
  auto spec = WordCountSpec(1);
  spec.combiner = [](std::span<const std::pair<std::string, int>> group,
                     std::vector<std::pair<std::string, int>>* out) {
    int sum = 0;
    for (const auto& [k, v] : group) sum += v;
    out->emplace_back(group.front().first, sum);
  };
  JobRunner runner(2);
  auto result = runner.Run(spec, WordInput());
  auto counts = CollectCounts(result);
  EXPECT_EQ(counts["a"], 4);
  EXPECT_EQ(counts["c"], 3);
  // Partition 0 has words {a,b,c} and partition 1 {a,b,c}: the combined
  // shuffle carries at most 3 records per map task.
  EXPECT_EQ(result.metrics.reduce_tasks[0].input_records, 6);
}

TEST(MrJobTest, EmptyPartitionsProduceNoOutput) {
  JobRunner runner(2);
  std::vector<std::vector<std::pair<int, std::string>>> input(3);
  auto result = runner.Run(WordCountSpec(2), input);
  EXPECT_TRUE(result.MergedOutput().empty());
  EXPECT_EQ(result.metrics.map_tasks.size(), 3u);
}

// ---------------------------------------------------------------------
// Composite key semantics: the Figure 1 example. Keys have a shape and a
// color; partitioning uses the color only, grouping the entire key.
// ---------------------------------------------------------------------

struct ShapeColorKey {
  int shape;  // 0=circle, 1=triangle
  int color;  // 0=light, 1=dark, 2=black
};

class PassThroughMapper
    : public Mapper<int, ShapeColorKey, ShapeColorKey, int> {
 public:
  void Map(const int&, const ShapeColorKey& v,
           MapContext<ShapeColorKey, int>* ctx) override {
    ctx->Emit(v, 1);
  }
};

class GroupCountReducer
    : public Reducer<ShapeColorKey, int, ShapeColorKey, int> {
 public:
  void Reduce(std::span<const std::pair<ShapeColorKey, int>> group,
              ReduceContext<ShapeColorKey, int>* ctx) override {
    ctx->Emit(group.front().first, static_cast<int>(group.size()));
  }
};

TEST(MrJobTest, Figure1PartitionByColorGroupByEntireKey) {
  JobSpec<int, ShapeColorKey, ShapeColorKey, int, ShapeColorKey, int> spec;
  spec.num_reduce_tasks = 3;
  spec.mapper_factory = [](const TaskContext&) {
    return std::make_unique<PassThroughMapper>();
  };
  spec.reducer_factory = [](const TaskContext&) {
    return std::make_unique<GroupCountReducer>();
  };
  spec.partitioner = [](const ShapeColorKey& k, uint32_t r) {
    return static_cast<uint32_t>(k.color) % r;
  };
  spec.key_less = [](const ShapeColorKey& a, const ShapeColorKey& b) {
    return std::tie(a.color, a.shape) < std::tie(b.color, b.shape);
  };
  spec.group_equal = [](const ShapeColorKey& a, const ShapeColorKey& b) {
    return a.color == b.color && a.shape == b.shape;
  };

  // 10 keys over 5 distinct (shape, color) combinations, as in Figure 1.
  std::vector<std::vector<std::pair<int, ShapeColorKey>>> input(2);
  auto add = [&](int part, int shape, int color) {
    input[part].push_back({0, ShapeColorKey{shape, color}});
  };
  add(0, 0, 0); add(0, 1, 0); add(0, 0, 1); add(0, 1, 2); add(0, 0, 0);
  add(1, 1, 0); add(1, 0, 1); add(1, 0, 2); add(1, 1, 2); add(1, 0, 0);

  JobRunner runner(2);
  auto result = runner.Run(spec, input);

  // Grouping on the entire key: 5 reduce calls across 3 reduce tasks.
  int total_groups = 0;
  for (const auto& t : result.metrics.reduce_tasks) {
    total_groups += static_cast<int>(t.groups);
  }
  EXPECT_EQ(total_groups, 5);

  // Partitioning on color only: every key of one color lands in the same
  // reduce task.
  for (uint32_t t = 0; t < 3; ++t) {
    std::set<int> colors;
    for (const auto& [k, v] : result.outputs_per_reduce_task[t]) {
      colors.insert(k.color);
    }
    EXPECT_LE(colors.size(), 1u) << "reduce task " << t;
  }

  // Group sizes: (circle,light)=3, (triangle,light)=2, (circle,dark)=2,
  // (circle,black)=1, (triangle,black)=2.
  std::map<std::pair<int, int>, int> sizes;
  for (const auto& [k, v] : result.MergedOutput()) {
    sizes[{k.shape, k.color}] = v;
  }
  EXPECT_EQ((sizes[{0, 0}]), 3);
  EXPECT_EQ((sizes[{1, 0}]), 2);
  EXPECT_EQ((sizes[{0, 1}]), 2);
  EXPECT_EQ((sizes[{0, 2}]), 1);
  EXPECT_EQ((sizes[{1, 2}]), 2);
}

// ---------------------------------------------------------------------
// Equal-key run contiguity: values with identical keys must arrive
// grouped by origin map task, in map-task order (the Hadoop merge
// property BlockSplit's streaming reduce depends on).
// ---------------------------------------------------------------------

struct TaggedValue {
  uint32_t origin_map_task;
  int seq;
};

class TagMapper : public Mapper<int, int, int, TaggedValue> {
 public:
  explicit TagMapper(uint32_t task) : task_(task) {}
  void Map(const int& key, const int& v,
           MapContext<int, TaggedValue>* ctx) override {
    ctx->Emit(key, TaggedValue{task_, v});
  }

 private:
  uint32_t task_;
};

class ContiguityReducer : public Reducer<int, TaggedValue, int, int> {
 public:
  void Reduce(std::span<const std::pair<int, TaggedValue>> group,
              ReduceContext<int, int>* ctx) override {
    // Origin map tasks must be non-decreasing within the group.
    uint32_t last = 0;
    bool ok = true;
    for (const auto& [k, v] : group) {
      if (v.origin_map_task < last) ok = false;
      last = v.origin_map_task;
    }
    ctx->Emit(group.front().first, ok ? 1 : 0);
  }
};

TEST(MrJobTest, EqualKeysStayContiguousPerMapTask) {
  JobSpec<int, int, int, TaggedValue, int, int> spec;
  spec.num_reduce_tasks = 2;
  spec.mapper_factory = [](const TaskContext& ctx) {
    return std::make_unique<TagMapper>(ctx.task_index);
  };
  spec.reducer_factory = [](const TaskContext&) {
    return std::make_unique<ContiguityReducer>();
  };
  spec.partitioner = [](const int& k, uint32_t r) {
    return static_cast<uint32_t>(k) % r;
  };
  spec.key_less = [](const int& a, const int& b) { return a < b; };
  spec.group_equal = [](const int& a, const int& b) { return a == b; };

  // 6 map tasks all emitting the same small key set.
  std::vector<std::vector<std::pair<int, int>>> input(6);
  for (int t = 0; t < 6; ++t) {
    for (int i = 0; i < 10; ++i) {
      input[t].push_back({i % 3, i});
    }
  }
  JobRunner runner(4);
  auto result = runner.Run(spec, input);
  for (const auto& [key, ok] : result.MergedOutput()) {
    EXPECT_EQ(ok, 1) << "key " << key << " interleaved across map tasks";
  }
}

// ---------------------------------------------------------------------
// Grouping coarser than sorting (secondary sort): group receives keys in
// sort order, and the reducer sees each value's own key.
// ---------------------------------------------------------------------

struct SecondaryKey {
  int group;
  int pos;
};

class SecondarySortReducer
    : public Reducer<SecondaryKey, int, int, std::vector<int>> {
 public:
  void Reduce(std::span<const std::pair<SecondaryKey, int>> group,
              ReduceContext<int, std::vector<int>>* ctx) override {
    std::vector<int> positions;
    for (const auto& [k, v] : group) positions.push_back(k.pos);
    ctx->Emit(group.front().first.group, positions);
  }
};

class SecondaryMapper
    : public Mapper<int, SecondaryKey, SecondaryKey, int> {
 public:
  void Map(const int&, const SecondaryKey& v,
           MapContext<SecondaryKey, int>* ctx) override {
    ctx->Emit(v, 0);
  }
};

TEST(MrJobTest, SecondarySortDeliversValuesInKeyOrder) {
  JobSpec<int, SecondaryKey, SecondaryKey, int, int, std::vector<int>> spec;
  spec.num_reduce_tasks = 1;
  spec.mapper_factory = [](const TaskContext&) {
    return std::make_unique<SecondaryMapper>();
  };
  spec.reducer_factory = [](const TaskContext&) {
    return std::make_unique<SecondarySortReducer>();
  };
  spec.partitioner = [](const SecondaryKey& k, uint32_t r) {
    return static_cast<uint32_t>(k.group) % r;
  };
  spec.key_less = [](const SecondaryKey& a, const SecondaryKey& b) {
    return std::tie(a.group, a.pos) < std::tie(b.group, b.pos);
  };
  spec.group_equal = [](const SecondaryKey& a, const SecondaryKey& b) {
    return a.group == b.group;
  };

  std::vector<std::vector<std::pair<int, SecondaryKey>>> input(2);
  input[0] = {{0, {1, 5}}, {0, {1, 1}}, {0, {2, 9}}};
  input[1] = {{0, {1, 3}}, {0, {2, 2}}};
  JobRunner runner(2);
  auto result = runner.Run(spec, input);
  std::map<int, std::vector<int>> by_group;
  for (const auto& [g, positions] : result.MergedOutput()) {
    by_group[g] = positions;
  }
  EXPECT_EQ(by_group[1], (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(by_group[2], (std::vector<int>{2, 9}));
}

TEST(MrJobTest, CountersMergeAcrossTasks) {
  auto spec = WordCountSpec(2);
  spec.mapper_factory = [](const TaskContext&) {
    class CountingMapper : public WordCountMapper {
      void Map(const int& k, const std::string& line,
               MapContext<std::string, int>* ctx) override {
        ctx->counters()->Increment("custom.lines");
        WordCountMapper::Map(k, line, ctx);
      }
    };
    return std::make_unique<CountingMapper>();
  };
  JobRunner runner(2);
  auto result = runner.Run(spec, WordInput());
  EXPECT_EQ(result.metrics.counters.Get("custom.lines"), 3);
  EXPECT_EQ(result.metrics.counters.Get(kCounterMapOutputPairs), 9);
}

// ---------------------------------------------------------------------
// Typed fast path: a TypedJobSpec with functor comp/group/part must
// produce byte-identical output to the std::function JobSpec.
// ---------------------------------------------------------------------

struct WordLessFn {
  bool operator()(const std::string& a, const std::string& b) const {
    return a < b;
  }
};
struct WordEqualFn {
  bool operator()(const std::string& a, const std::string& b) const {
    return a == b;
  }
};
struct WordPartitionFn {
  uint32_t operator()(const std::string& k, uint32_t r) const {
    return static_cast<uint32_t>(Fnv1a64(k) % r);
  }
};

TEST(MrJobTest, TypedSpecMatchesFunctionSpec) {
  TypedJobSpec<int, std::string, std::string, int, std::string, int,
               WordLessFn, WordEqualFn, WordPartitionFn>
      typed;
  typed.num_reduce_tasks = 4;
  typed.mapper_factory = [](const TaskContext&) {
    return std::make_unique<WordCountMapper>();
  };
  typed.reducer_factory = [](const TaskContext&) {
    return std::make_unique<SumReducer>();
  };
  JobRunner runner(4);
  auto typed_result = runner.Run(typed, WordInput());
  auto fn_result = runner.Run(WordCountSpec(4), WordInput());
  EXPECT_EQ(typed_result.MergedOutput(), fn_result.MergedOutput());
  EXPECT_EQ(typed_result.metrics.counters.Get(kCounterMapOutputPairs),
            fn_result.metrics.counters.Get(kCounterMapOutputPairs));
}

TEST(MrJobTest, TypedSpecSupportsCombiner) {
  TypedJobSpec<int, std::string, std::string, int, std::string, int,
               WordLessFn, WordEqualFn, WordPartitionFn>
      typed;
  typed.num_reduce_tasks = 1;
  typed.mapper_factory = [](const TaskContext&) {
    return std::make_unique<WordCountMapper>();
  };
  typed.reducer_factory = [](const TaskContext&) {
    return std::make_unique<SumReducer>();
  };
  typed.combiner = [](std::span<const std::pair<std::string, int>> group,
                      std::vector<std::pair<std::string, int>>* out) {
    int sum = 0;
    for (const auto& [k, v] : group) sum += v;
    out->emplace_back(group.front().first, sum);
  };
  JobRunner runner(2);
  auto result = runner.Run(typed, WordInput());
  auto counts = CollectCounts(result);
  EXPECT_EQ(counts["a"], 4);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 3);
  EXPECT_EQ(result.metrics.reduce_tasks[0].input_records, 6);
}

TEST(SideStoreTest, AppendAndRead) {
  SideStore<std::string, int> store(3);
  store.Append(0, "a", 1);
  store.Append(2, "b", 2);
  store.Append(0, "c", 3);
  EXPECT_EQ(store.File(0).size(), 2u);
  EXPECT_EQ(store.File(1).size(), 0u);
  EXPECT_EQ(store.File(2).size(), 1u);
  EXPECT_EQ(store.TotalRecords(), 3u);
  EXPECT_EQ(store.File(0)[0].first, "a");
  EXPECT_EQ(store.File(0)[1].second, 3);
  EXPECT_EQ(store.num_tasks(), 3u);
}

}  // namespace
}  // namespace mr
}  // namespace erlb
