#include "er/similarity.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/random.h"

namespace erlb {
namespace er {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "xy"), 2u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("intention", "execution"), 5u);
  EXPECT_EQ(EditDistance("a", "b"), 1u);
  EXPECT_EQ(EditDistance("ab", "ba"), 2u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("sunday", "saturday"),
            EditDistance("saturday", "sunday"));
}

TEST(EditDistanceTest, TriangleInequalityOnSamples) {
  Pcg32 rng(31);
  auto random_str = [&](size_t max_len) {
    std::string s;
    size_t len = rng.NextBounded(static_cast<uint32_t>(max_len + 1));
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.NextBounded(4));
    }
    return s;
  };
  for (int iter = 0; iter < 200; ++iter) {
    std::string a = random_str(12), b = random_str(12), c = random_str(12);
    EXPECT_LE(EditDistance(a, c),
              EditDistance(a, b) + EditDistance(b, c));
  }
}

TEST(EditDistanceBoundedTest, AgreesWithFullWhenWithinBound) {
  Pcg32 rng(37);
  auto random_str = [&](size_t max_len) {
    std::string s;
    size_t len = rng.NextBounded(static_cast<uint32_t>(max_len + 1));
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.NextBounded(5));
    }
    return s;
  };
  for (int iter = 0; iter < 500; ++iter) {
    std::string a = random_str(16), b = random_str(16);
    size_t full = EditDistance(a, b);
    for (size_t bound : {0u, 1u, 2u, 4u, 8u, 16u}) {
      size_t banded = EditDistanceBounded(a, b, bound);
      if (full <= bound) {
        EXPECT_EQ(banded, full) << "a=" << a << " b=" << b
                                << " bound=" << bound;
      } else {
        EXPECT_GT(banded, bound) << "a=" << a << " b=" << b
                                 << " bound=" << bound;
      }
    }
  }
}

TEST(EditDistanceBoundedTest, LengthGapShortCircuit) {
  EXPECT_GT(EditDistanceBounded("abcdefgh", "a", 3), 3u);
  EXPECT_EQ(EditDistanceBounded("abcdefgh", "a", 7), 7u);
}

TEST(EditDistanceBoundedTest, EmptyStrings) {
  EXPECT_EQ(EditDistanceBounded("", "", 0), 0u);
  EXPECT_EQ(EditDistanceBounded("ab", "", 2), 2u);
  EXPECT_GT(EditDistanceBounded("abc", "", 2), 2u);
}

TEST(EditSimilarityTest, RangeAndIdentity) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(EditSimilarity("abcd", "abcx"), 0.75, 1e-12);
}

TEST(EditSimilarityTest, PaperThresholdExample) {
  // Two titles differing by one character out of ten: sim 0.9 >= 0.8.
  EXPECT_TRUE(EditSimilarityAtLeast("canon eos 5", "canon eos 6", 0.8));
  // Completely different strings fail.
  EXPECT_FALSE(EditSimilarityAtLeast("canon eos 5", "nikon d300x", 0.8));
}

TEST(EditSimilarityAtLeastTest, AgreesWithDirectComputation) {
  Pcg32 rng(41);
  auto random_str = [&](size_t max_len) {
    std::string s;
    size_t len = rng.NextBounded(static_cast<uint32_t>(max_len)) + 1;
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.NextBounded(6));
    }
    return s;
  };
  for (int iter = 0; iter < 500; ++iter) {
    std::string a = random_str(14), b = random_str(14);
    for (double t : {0.0, 0.3, 0.5, 0.8, 0.9, 1.0}) {
      bool expected = EditSimilarity(a, b) >= t - 1e-12;
      EXPECT_EQ(EditSimilarityAtLeast(a, b, t), expected)
          << "a=" << a << " b=" << b << " t=" << t;
    }
  }
}

TEST(TokenizeTest, LowercasesAndStripsPunctuation) {
  auto t = TokenizeWords("The Quick, brown FOX!");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "the");
  EXPECT_EQ(t[1], "quick");
  EXPECT_EQ(t[3], "fox");
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("... !!!").empty());
}

TEST(JaccardTest, IdenticalAndDisjoint) {
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("a b c", "c b a"), 1.0);
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("a b", "c d"), 0.0);
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("", ""), 1.0);
}

TEST(JaccardTest, PartialOverlap) {
  // {a,b,c} vs {b,c,d}: 2/4.
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("a b c", "b c d"), 0.5);
}

TEST(NgramTest, GramExtraction) {
  auto g = CharNgrams("abcd", 3);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g[0], "abc");
  EXPECT_EQ(g[1], "bcd");
  EXPECT_EQ(CharNgrams("ab", 3).size(), 1u);  // short string -> whole
  EXPECT_TRUE(CharNgrams("", 3).empty());
}

TEST(NgramTest, SimilarityBasics) {
  EXPECT_DOUBLE_EQ(NgramSimilarity("abcd", "abcd", 3), 1.0);
  EXPECT_DOUBLE_EQ(NgramSimilarity("abc", "xyz", 3), 0.0);
  EXPECT_GT(NgramSimilarity("database", "databases", 3), 0.6);
}

// Parameterized sweep: similarity measures are symmetric and in [0,1].
class SimilarityPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SimilarityPropertyTest, SymmetricAndBounded) {
  auto [seed, len] = GetParam();
  Pcg32 rng(seed);
  auto random_str = [&](size_t max_len) {
    std::string s;
    size_t n = rng.NextBounded(static_cast<uint32_t>(max_len + 1));
    for (size_t i = 0; i < n; ++i) {
      s += static_cast<char>('a' + rng.NextBounded(8));
    }
    return s;
  };
  for (int iter = 0; iter < 50; ++iter) {
    std::string a = random_str(len), b = random_str(len);
    for (double s : {EditSimilarity(a, b), JaccardTokenSimilarity(a, b),
                     NgramSimilarity(a, b, 3)}) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
    EXPECT_DOUBLE_EQ(EditSimilarity(a, b), EditSimilarity(b, a));
    EXPECT_DOUBLE_EQ(NgramSimilarity(a, b, 2), NgramSimilarity(b, a, 2));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimilarityPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(4, 12, 24)));

// ---------------------------------------------------------------------
// Regression pins for the set -> sorted-vector rewrite: exact values the
// former std::set<std::string>-based kernels produced, plus a randomized
// differential against an in-test set-based reference.
// ---------------------------------------------------------------------

double ReferenceSetJaccard(const std::set<std::string>& sa,
                           const std::set<std::string>& sb) {
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

double ReferenceJaccardTokens(std::string_view a, std::string_view b) {
  auto ta = TokenizeWords(a);
  auto tb = TokenizeWords(b);
  return ReferenceSetJaccard({ta.begin(), ta.end()}, {tb.begin(), tb.end()});
}

double ReferenceNgram(std::string_view a, std::string_view b, size_t n) {
  auto ga = CharNgrams(a, n);
  auto gb = CharNgrams(b, n);
  return ReferenceSetJaccard({ga.begin(), ga.end()}, {gb.begin(), gb.end()});
}

TEST(SimilarityRegressionTest, PinnedJaccardValues) {
  // {fuzzy,wuzzy,was,a,bear} vs {fuzzy,wuzzy,had,hair}: 2 / 7.
  EXPECT_DOUBLE_EQ(
      JaccardTokenSimilarity("Fuzzy Wuzzy was a bear", "fuzzy wuzzy had hair"),
      2.0 / 7.0);
  // Duplicate tokens collapse (set semantics): {a,b} vs {a,b}.
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("a a b", "a b b"), 1.0);
  // Case and punctuation are normalized away.
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("Hello, World!", "hello world"),
                   1.0);
}

TEST(SimilarityRegressionTest, PinnedNgramValues) {
  // {abc,bcd,cde} vs {abc,bcd,cdf}: 2 / 4.
  EXPECT_DOUBLE_EQ(NgramSimilarity("abcde", "abcdf", 3), 0.5);
  // Repeated grams collapse; lowering applies: {aa} vs {aa}.
  EXPECT_DOUBLE_EQ(NgramSimilarity("AAAA", "aaaa", 2), 1.0);
  // n = 0 produces no grams on either side -> both empty -> 1.
  EXPECT_DOUBLE_EQ(NgramSimilarity("abc", "xyz", 0), 1.0);
  // One side empty: 0 / 1.
  EXPECT_DOUBLE_EQ(NgramSimilarity("", "ab", 3), 0.0);
}

TEST(SimilarityRegressionTest, DifferentialAgainstSetBasedReference) {
  Pcg32 rng(31);
  const std::string alphabet = "aAbBcC dD-,.12 xyZ";
  auto random_str = [&] {
    std::string s;
    size_t n = rng.NextBounded(40);
    for (size_t i = 0; i < n; ++i) {
      s += alphabet[rng.NextBounded(static_cast<uint32_t>(alphabet.size()))];
    }
    return s;
  };
  for (int iter = 0; iter < 300; ++iter) {
    std::string a = random_str(), b = random_str();
    EXPECT_DOUBLE_EQ(JaccardTokenSimilarity(a, b),
                     ReferenceJaccardTokens(a, b))
        << "a=\"" << a << "\" b=\"" << b << "\"";
    for (size_t n : {2u, 3u}) {
      EXPECT_DOUBLE_EQ(NgramSimilarity(a, b, n), ReferenceNgram(a, b, n))
          << "n=" << n << " a=\"" << a << "\" b=\"" << b << "\"";
    }
  }
}

TEST(SimilarityViewApiTest, TokenViewsMatchTokenizeWords) {
  std::string buf;
  std::vector<std::string_view> views;
  AppendTokenViews(" Hello, World! 42 ", &buf, &views);
  ASSERT_EQ(views.size(), 3u);
  EXPECT_EQ(views[0], "hello");
  EXPECT_EQ(views[1], "world");
  EXPECT_EQ(views[2], "42");
  // Reuse: the buffers are cleared, not reallocated.
  AppendTokenViews("", &buf, &views);
  EXPECT_TRUE(views.empty());
}

TEST(SimilarityViewApiTest, NgramViewsMatchCharNgrams) {
  std::string buf;
  std::vector<std::string_view> views;
  AppendCharNgramViews("AbCd", 3, &buf, &views);
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0], "abc");
  EXPECT_EQ(views[1], "bcd");
  AppendCharNgramViews("ab", 3, &buf, &views);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0], "ab");
  AppendCharNgramViews("abc", 0, &buf, &views);
  EXPECT_TRUE(views.empty());
}

}  // namespace
}  // namespace er
}  // namespace erlb
