#!/usr/bin/env python3
"""Project-specific lint: repo invariants clang-tidy cannot express.

Stdlib only, like bench_compare.py. Usage:

    lint_erlb.py [--root DIR] [paths...]    # lint the tree (or files)
    lint_erlb.py --selftest                 # verify the rules themselves

Rules (each maps to a load-bearing project contract):

  nodiscard      Every declaration returning `Status` or `Result<T>` *by
                 value* in a header must carry `[[nodiscard]]`. The
                 Status/Result classes are themselves [[nodiscard]], which
                 makes compilers warn at call sites; the per-declaration
                 attribute keeps the contract visible at the API and
                 protects against the class attribute being lost.
                 Reference returns (accessors like `const Status&
                 status()`) and fields with initializers are exempt.

  raw-mutex      No `std::mutex` / `std::lock_guard` / `std::unique_lock`
                 / `std::condition_variable` / `std::scoped_lock` outside
                 src/common/mutex.h. Everything else must use the
                 annotated erlb::Mutex wrappers so `clang -Wthread-safety`
                 can check lock discipline on every build.

  header-guard   `#ifndef`/`#define` guard must be ERLB_<PATH>_H_ derived
                 from the file path (src/ stripped for library headers).

  dcheck-side-effect
                 `ERLB_DCHECK(cond)` compiles to a no-op in NDEBUG builds,
                 so `cond` must not contain side effects (++/--/plain
                 assignment). Release and debug binaries would otherwise
                 compute different states.

  fault-site     Every `ERLB_FAULT_POINT(...)` under src/ must pass a
                 plain string literal, each site name must have exactly
                 one definition point in the tree, and the set of used
                 sites must equal kRegisteredFaultSites in
                 src/common/fault.cc (both directions: an unregistered
                 site never fires and silently weakens the fault-sweep
                 test; a registered-but-unused site makes the sweep arm
                 dead names). Direct `FaultInjector::Global().Hit("...")`
                 calls count as definition points too (used where the
                 macro's return-Status shape does not fit). On top of the
                 set equality, REQUIRED_FAULT_SITES must be present: the
                 serve daemon's accept/batch hooks are exercised by
                 tests/test_serve.cc rather than the generic fault sweep
                 (which skips serve.*), so dropping them from the
                 registry would silently lose that coverage.

Exit code 1 iff any finding. Output is one `path:line: [rule] message`
per finding, compiler-style, so editors and CI annotate it.
"""

import argparse
import os
import re
import sys

LINT_DIRS = ("src", "tests", "bench", "examples", "tools")
CPP_EXTENSIONS = (".h", ".cc")

# The one place raw std synchronization primitives are allowed: the
# annotated wrappers themselves.
RAW_MUTEX_ALLOWLIST = ("src/common/mutex.h",)

RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(?:_any)?)\b"
)

# A Status/Result-by-value declaration: optional specifiers, the return
# type (not followed by &, * or another identifier character), then the
# function name and an opening parenthesis on the same line. Fields with
# initializers fail the `name(` requirement; references are excluded by
# the lookahead after the type.
NODISCARD_DECL_RE = re.compile(
    r"^\s*"
    r"(?:(?:virtual|static|inline|constexpr|explicit|friend)\s+)*"
    r"(?:::)?(?:erlb::)?(?:Status|Result<(?:[^<>;]|<[^<>]*>)*>)"
    r"(?![&*\w<])\s+"
    r"(?P<name>~?[A-Za-z_]\w*)\s*\("
)

DCHECK_RE = re.compile(r"\bERLB_DCHECK\s*\(")

# Fault-site definition points: the macro, or a direct injector Hit with
# a literal (io_buffer.cc's write path, where the macro's return shape
# does not fit). fault.h (macro definition) and fault.cc (registry) are
# exempt from the per-file literal check.
FAULT_POINT_RE = re.compile(r"\bERLB_FAULT_POINT\s*\(")
FAULT_SITE_DEF_RE = re.compile(
    r'\bERLB_FAULT_POINT\s*\(\s*"(?P<macro>[^"]*)"\s*\)'
    r'|\bFaultInjector::Global\(\)\s*\.\s*Hit\s*\(\s*"(?P<direct>[^"]*)"\s*\)'
)
FAULT_ALLOWLIST = ("src/common/fault.h", "src/common/fault.cc")
FAULT_REGISTRY_FILE = "src/common/fault.cc"
FAULT_REGISTRY_RE = re.compile(
    r"kRegisteredFaultSites\s*\[\s*\]\s*=\s*\{(?P<body>[^}]*)\}", re.S)

# Sites that must stay in the registry no matter how the code moves.
# The serve daemon's fault hooks are covered by dedicated tests
# (tests/test_serve.cc drops a connection / fails a batch), not by the
# generic fault sweep, which skips serve.* because the daemon owns its
# own recovery; without this check a refactor could delete the hooks and
# no test would notice the lost coverage.
REQUIRED_FAULT_SITES = frozenset({"serve.accept", "serve.batch"})

# ++/-- anywhere, or a single = that is not part of ==, !=, <=, >=, =>,
# += and friends.
SIDE_EFFECT_RE = re.compile(r"\+\+|--|(?<![=!<>+\-*/%&|^])=(?![=])")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text, keep_strings=False):
    """Blanks out // and /* */ comments, preserving line structure.

    By default string literal *contents* are dropped too (no lint
    pattern should fire inside them); `keep_strings` preserves them for
    rules that inspect literals, like fault-site.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                break
            out.append("\n")
            i = j + 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                j = n
            out.append("\n" * text.count("\n", i, j))
            i = j + 2
        elif c == '"':
            out.append('"')
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    if keep_strings:
                        out.append(text[i])
                    i += 1
                    if keep_strings and i < n:
                        out.append(text[i])
                    i += 1
                    continue
                if text[i] == "\n":
                    out.append("\n")
                elif keep_strings:
                    out.append(text[i])
                i += 1
            out.append('"')
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(relpath):
    """ERLB_<PATH>_H_ with src/ stripped for library headers."""
    path = relpath.replace(os.sep, "/")
    if path.startswith("src/"):
        path = path[len("src/"):]
    return "ERLB_" + re.sub(r"[^A-Za-z0-9]", "_", path).upper() + "_"


def check_nodiscard(relpath, lines, findings):
    if not relpath.endswith(".h"):
        return
    for i, line in enumerate(lines):
        m = NODISCARD_DECL_RE.match(line)
        if not m:
            continue
        # Attribute on the same line before the type, or at the end of one
        # of the two preceding lines (it may sit above the declaration,
        # possibly above a template<> or specifier line).
        window = "".join(lines[max(0, i - 2):i]) + line[:m.start("name")]
        if "[[nodiscard]]" in window:
            continue
        # Constructors of Status/Result themselves (e.g. `Status(StatusCode
        # code, ...)`) are not returning declarations.
        if m.group("name") in ("Status", "Result"):
            continue
        findings.append(Finding(
            relpath, i + 1, "nodiscard",
            f"declaration of '{m.group('name')}' returns Status/Result "
            "by value but is not marked [[nodiscard]]"))


def check_raw_mutex(relpath, lines, findings):
    if relpath.replace(os.sep, "/") in RAW_MUTEX_ALLOWLIST:
        return
    for i, line in enumerate(lines):
        m = RAW_MUTEX_RE.search(line)
        if m:
            findings.append(Finding(
                relpath, i + 1, "raw-mutex",
                f"use erlb::Mutex/MutexLock/CondVar (common/mutex.h) "
                f"instead of {m.group(0)} so thread-safety analysis "
                "covers it"))


def check_header_guard(relpath, lines, findings):
    if not relpath.endswith(".h"):
        return
    guard = expected_guard(relpath)
    ifndef_re = re.compile(r"^#ifndef\s+(\S+)")
    for i, line in enumerate(lines):
        m = ifndef_re.match(line)
        if not m:
            continue
        actual = m.group(1)
        if actual != guard:
            findings.append(Finding(
                relpath, i + 1, "header-guard",
                f"guard is {actual}, expected {guard}"))
        elif i + 1 >= len(lines) or not lines[i + 1].startswith(
                f"#define {guard}"):
            findings.append(Finding(
                relpath, i + 2, "header-guard",
                f"#ifndef {guard} not followed by #define {guard}"))
        return
    findings.append(Finding(relpath, 1, "header-guard",
                            f"missing include guard {guard}"))


def balanced_argument(text, start):
    """Returns text of the (...) argument starting at `start` ('(')."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1:i]
    return text[start + 1:]


def check_dcheck(relpath, text, findings):
    for m in DCHECK_RE.finditer(text):
        arg = balanced_argument(text, m.end() - 1)
        if SIDE_EFFECT_RE.search(arg):
            line = text.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                relpath, line, "dcheck-side-effect",
                "ERLB_DCHECK condition contains a side effect "
                "(++/--/assignment); it is compiled out under NDEBUG"))


def check_fault_point_literals(relpath, text, findings):
    """Per-file half of fault-site: macro args must be string literals."""
    path = relpath.replace(os.sep, "/")
    if not path.startswith("src/") or path in FAULT_ALLOWLIST:
        return
    for m in FAULT_POINT_RE.finditer(text):
        arg = balanced_argument(text, m.end() - 1)
        if not re.fullmatch(r'\s*"[^"]*"\s*', arg):
            line = text.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                relpath, line, "fault-site",
                "ERLB_FAULT_POINT argument must be a plain string "
                "literal so the lint can cross-check it against "
                "kRegisteredFaultSites"))


def collect_fault_sites(relpath, text):
    """Yields (site, line) definition points in a src/ file."""
    path = relpath.replace(os.sep, "/")
    if not path.startswith("src/") or path in FAULT_ALLOWLIST:
        return
    for m in FAULT_SITE_DEF_RE.finditer(text):
        site = m.group("macro")
        if site is None:
            site = m.group("direct")
        yield site, text.count("\n", 0, m.start()) + 1


def parse_fault_registry(root):
    """Returns {site} from kRegisteredFaultSites, or None if unparseable."""
    path = os.path.join(root, FAULT_REGISTRY_FILE)
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as f:
        text = strip_comments(f.read(), keep_strings=True)
    m = FAULT_REGISTRY_RE.search(text)
    if not m:
        return None
    return set(re.findall(r'"([^"]*)"', m.group("body")))


def check_fault_sites_tree(root, site_defs, findings):
    """Tree half of fault-site: uniqueness + registry cross-check.

    `site_defs` is a list of (site, relpath, line) collected across the
    linted files; only meaningful for whole-tree runs.
    """
    registry = parse_fault_registry(root)
    if registry is None:
        findings.append(Finding(
            FAULT_REGISTRY_FILE, 1, "fault-site",
            "cannot parse kRegisteredFaultSites[]"))
        return
    for site in sorted(REQUIRED_FAULT_SITES - registry):
        findings.append(Finding(
            FAULT_REGISTRY_FILE, 1, "fault-site",
            f'required fault site "{site}" is missing from '
            "kRegisteredFaultSites — the serve daemon's fault hooks are "
            "covered by tests/test_serve.cc, not the generic sweep, so "
            "deleting them silently loses that coverage"))
    seen = {}
    for site, relpath, line in site_defs:
        if site in seen:
            findings.append(Finding(
                relpath, line, "fault-site",
                f'duplicate fault site "{site}" (first defined at '
                f"{seen[site][0]}:{seen[site][1]}); every site must have "
                "exactly one definition point"))
        else:
            seen[site] = (relpath, line)
        if site not in registry:
            findings.append(Finding(
                relpath, line, "fault-site",
                f'fault site "{site}" is not in kRegisteredFaultSites '
                "(src/common/fault.cc) — Arm() would reject it and the "
                "fault-sweep test would never cover it"))
    for site in sorted(registry - set(seen)):
        findings.append(Finding(
            FAULT_REGISTRY_FILE, 1, "fault-site",
            f'registered fault site "{site}" has no definition point '
            "under src/ — the fault sweep arms a dead name"))


def lint_file(root, relpath, site_defs=None):
    findings = []
    with open(os.path.join(root, relpath), "r", encoding="utf-8") as f:
        raw = f.read()
    text = strip_comments(raw)
    lines = text.splitlines(keepends=True)
    check_nodiscard(relpath, lines, findings)
    check_raw_mutex(relpath, lines, findings)
    check_header_guard(relpath, lines, findings)
    check_dcheck(relpath, text, findings)
    literal_text = strip_comments(raw, keep_strings=True)
    check_fault_point_literals(relpath, literal_text, findings)
    if site_defs is not None:
        for site, line in collect_fault_sites(relpath, literal_text):
            site_defs.append((site, relpath, line))
    return findings


def collect_files(root, explicit):
    if explicit:
        for p in explicit:
            yield os.path.relpath(os.path.abspath(p), root)
        return
    for top in LINT_DIRS:
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, top)):
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def run_lint(root, explicit_paths):
    findings = []
    # The uniqueness/registry cross-check needs the whole tree; partial
    # (explicit-path) runs keep only the per-file literal check.
    site_defs = [] if not explicit_paths else None
    for relpath in collect_files(root, explicit_paths):
        findings.extend(lint_file(root, relpath, site_defs))
    if site_defs is not None:
        check_fault_sites_tree(root, site_defs, findings)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_erlb: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


# ---- selftest ---------------------------------------------------------------


def _lint_snippet(relpath, snippet):
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        full = os.path.join(tmp, relpath)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8") as f:
            f.write(snippet)
        return lint_file(tmp, relpath)


def selftest():
    failures = []

    def expect(name, relpath, snippet, rules):
        got = sorted({f.rule for f in _lint_snippet(relpath, snippet)})
        want = sorted(rules)
        if got != want:
            failures.append(f"{name}: expected rules {want}, got {got}")

    guarded = (
        "#ifndef ERLB_FOO_BAR_H_\n"
        "#define ERLB_FOO_BAR_H_\n"
        "{body}\n"
        "#endif  // ERLB_FOO_BAR_H_\n"
    )

    expect("missing nodiscard", "src/foo/bar.h",
           guarded.format(body="Status Frobnicate();"), ["nodiscard"])
    expect("missing nodiscard on Result", "src/foo/bar.h",
           guarded.format(body="Result<std::vector<int>> Load(int n);"),
           ["nodiscard"])
    expect("nodiscard present", "src/foo/bar.h",
           guarded.format(body="[[nodiscard]] Status Frobnicate();"), [])
    expect("nodiscard on preceding line", "src/foo/bar.h",
           guarded.format(body="[[nodiscard]]\nStatus Frobnicate();"), [])
    expect("status field with initializer", "src/foo/bar.h",
           guarded.format(body="struct R { Status status = Status::OK(); };"),
           [])
    expect("status reference accessor", "src/foo/bar.h",
           guarded.format(body="const Status& status() const;"), [])
    expect("status declaration in comment", "src/foo/bar.h",
           guarded.format(body="// Status Frobnicate();"), [])

    expect("raw std::mutex", "src/foo/bar.h",
           guarded.format(body="std::mutex mu_;"),
           ["raw-mutex"])
    expect("raw lock_guard in .cc", "src/foo/bar.cc",
           "void F() { std::lock_guard<std::mutex> l(mu); }\n",
           ["raw-mutex", "raw-mutex"][:1])
    expect("mutex wrapper header allowed", "src/common/mutex.h",
           "#ifndef ERLB_COMMON_MUTEX_H_\n#define ERLB_COMMON_MUTEX_H_\n"
           "std::mutex mu_;\n#endif\n",
           [])

    expect("wrong guard", "src/foo/bar.h",
           "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n#endif\n",
           ["header-guard"])
    expect("missing guard", "src/foo/bar.h", "int x;\n", ["header-guard"])
    expect("tests keep dir prefix", "tests/helper.h",
           "#ifndef ERLB_TESTS_HELPER_H_\n#define ERLB_TESTS_HELPER_H_\n"
           "#endif\n",
           [])

    expect("dcheck increment", "src/foo/bar.cc",
           "void F() { ERLB_DCHECK(++i > 0); }\n", ["dcheck-side-effect"])
    expect("dcheck assignment", "src/foo/bar.cc",
           "void F() { ERLB_DCHECK(x = 3); }\n", ["dcheck-side-effect"])
    expect("dcheck comparisons clean", "src/foo/bar.cc",
           "void F() { ERLB_DCHECK(a <= b && c == d && e != f); }\n", [])
    expect("dcheck multiline", "src/foo/bar.cc",
           "void F() {\n  ERLB_DCHECK(a ==\n              b--);\n}\n",
           ["dcheck-side-effect"])

    expect("fault point non-literal arg", "src/foo/bar.cc",
           'void F() { ERLB_FAULT_POINT(site_name); }\n', ["fault-site"])
    expect("fault point literal arg clean", "src/foo/bar.cc",
           'void F() { ERLB_FAULT_POINT("foo.bar"); }\n', [])
    expect("fault point in comment ignored", "src/foo/bar.cc",
           '// ERLB_FAULT_POINT(whatever)\n', [])
    expect("fault point outside src ignored", "tests/bar.cc",
           'void F() { ERLB_FAULT_POINT(site_name); }\n', [])

    def expect_tree(name, files, rules):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            for relpath, content in files.items():
                full = os.path.join(tmp, relpath)
                os.makedirs(os.path.dirname(full), exist_ok=True)
                with open(full, "w", encoding="utf-8") as f:
                    f.write(content)
            site_defs = []
            findings = []
            for relpath in files:
                if relpath.endswith(CPP_EXTENSIONS):
                    with open(os.path.join(tmp, relpath),
                              encoding="utf-8") as f:
                        text = strip_comments(f.read(), keep_strings=True)
                    for site, line in collect_fault_sites(relpath, text):
                        site_defs.append((site, relpath, line))
            check_fault_sites_tree(tmp, site_defs, findings)
        got = sorted(f.rule for f in findings)
        want = sorted(rules)
        if got != want:
            failures.append(f"{name}: expected rules {want}, got {got}")

    registry_cc = (
        "namespace {\n"
        "constexpr std::string_view kRegisteredFaultSites[] = {\n"
        '    "a.one",\n'
        '    "b.two",\n'
        '    "serve.accept",\n'
        '    "serve.batch",\n'
        "};\n"
        "}\n"
    )
    # Definition points for the always-required serve sites, so fixtures
    # exercise their *intended* rule and nothing else.
    serve_cc = ('FaultInjector::Global().Hit("serve.accept");\n'
                'FaultInjector::Global().Hit("serve.batch");\n')
    expect_tree("fault sites all registered and unique", {
        "src/common/fault.cc": registry_cc,
        "src/x/a.cc": 'ERLB_FAULT_POINT("a.one");\n',
        "src/x/b.cc": 'FaultInjector::Global().Hit("b.two");\n',
        "src/serve/s.cc": serve_cc,
    }, [])
    expect_tree("duplicate fault site", {
        "src/common/fault.cc": registry_cc,
        "src/x/a.cc": 'ERLB_FAULT_POINT("a.one");\n'
                      'ERLB_FAULT_POINT("a.one");\n',
        "src/x/b.cc": 'ERLB_FAULT_POINT("b.two");\n',
        "src/serve/s.cc": serve_cc,
    }, ["fault-site"])
    expect_tree("unregistered fault site", {
        "src/common/fault.cc": registry_cc,
        "src/x/a.cc": 'ERLB_FAULT_POINT("a.one");\n'
                      'ERLB_FAULT_POINT("c.three");\n',
        "src/x/b.cc": 'ERLB_FAULT_POINT("b.two");\n',
        "src/serve/s.cc": serve_cc,
    }, ["fault-site"])
    expect_tree("registered but unused fault site", {
        "src/common/fault.cc": registry_cc,
        "src/x/a.cc": 'ERLB_FAULT_POINT("a.one");\n'
                      'ERLB_FAULT_POINT("b.two");\n',
        "src/serve/s.cc": serve_cc[:serve_cc.find("\n") + 1],
    }, ["fault-site"])
    expect_tree("missing registry", {
        "src/x/a.cc": 'ERLB_FAULT_POINT("a.one");\n',
    }, ["fault-site"])
    expect_tree("required serve site dropped from registry", {
        "src/common/fault.cc": (
            "namespace {\n"
            "constexpr std::string_view kRegisteredFaultSites[] = {\n"
            '    "a.one",\n'
            '    "serve.accept",\n'
            "};\n"
            "}\n"),
        "src/x/a.cc": 'ERLB_FAULT_POINT("a.one");\n',
        "src/serve/s.cc": serve_cc[:serve_cc.find("\n") + 1],
    }, ["fault-site"])

    if failures:
        for f in failures:
            print(f"selftest FAIL: {f}", file=sys.stderr)
        return 1
    print("lint_erlb selftest: all cases pass")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in rule tests and exit")
    parser.add_argument("--root", default=None,
                        help="repo root (default: the script's parent dir)")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: whole tree)")
    args = parser.parse_args()

    if args.selftest:
        return selftest()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    return run_lint(root, args.paths)


if __name__ == "__main__":
    sys.exit(main())
