#!/usr/bin/env python3
"""Crash-resume differential harness for the checkpointed pipeline.

Drives the csv_dedup example as a child process, SIGKILLs it mid-job via
the ERLB_FAULT environment variable (fault kind `kill` fires an
uncatchable signal at the N-th hit of a task-lifecycle site), then
reruns the identical command over the same checkpoint directory and
asserts the resumed run is indistinguishable from an uninterrupted one:

  * the matches CSV is byte-identical,
  * the serialized match plan is byte-identical,
  * the dataflow report JSON is identical after stripping wall-clock
    timings and the resume counter itself,
  * the resumed run actually skipped committed map tasks
    (map_tasks_resumed > 0), and
  * stale spill temp dirs planted before the resume are swept.

Both crash points are exercised — mid-map (some map tasks committed,
some not) and mid-reduce (all map tasks committed) — for all three load
balancing strategies. Stdlib only, like bench_compare.py.

A second leg covers the shared-nothing multi-process mode: the
coordinator survives a SIGKILLed *worker* (ERLB_FAULT
worker.result=error@N poisons the worker whose N-th DONE frame the
parent takes, and the parent kills it), adopts the dead worker's
committed map task from its commit record, and still produces output
byte-identical to --workers=1 and to the single-process external run.
Unlike the whole-process crash cases, the job itself must *succeed* in
one go — worker death is recoverable, not fatal.

Usage:
    crash_harness.py --exe build/examples/csv_dedup --work-dir /tmp/ch
"""

import argparse
import copy
import json
import os
import shutil
import signal
import subprocess
import sys

STRATEGIES = ("Basic", "BlockSplit", "PairRange")

# Keys whose values legitimately differ between an uninterrupted run and
# a crash-resumed one: wall-clock noise and the resume counter itself.
VOLATILE_REPORT_KEYS = {"seconds", "total_seconds", "map_tasks_resumed"}

# Keys only multi-process runs emit; stripped when diffing a report
# across execution modes (single-process reports never carry them).
MULTIPROC_REPORT_KEYS = {"multi_process", "worker_processes",
                         "worker_deaths", "reduce_tasks_resumed"}

# Rows per CSV split in csv_dedup (kSplitRecords); the input must span
# several splits so a mid-map kill leaves a genuinely partial phase.
SPLIT_RECORDS = 1024


def log(msg):
    print(f"crash_harness: {msg}", flush=True)


def write_input_csv(path, rows=5000):
    """Deterministic near-duplicate catalog matching csv_dedup's demo
    shape: PrefixBlocking(0, 3) blocks on the first three name chars,
    EditDistanceMatcher(0.8) pairs the planted variants."""
    with open(path, "w", encoding="utf-8") as f:
        f.write("id,name\n")
        for i in range(rows):
            block = f"b{i % 40:02d}"  # 3-char blocking prefix
            base = f"{block} product {i // 40} model {i % 7}"
            if i % 4 == 3:
                # A near-duplicate of the previous row's name: one edit.
                base = base[:-1] + "x"
            f.write(f"{i},{base}\n")


def run_child(exe, args, env_fault=None, cwd=None):
    env = dict(os.environ)
    env.pop("ERLB_FAULT", None)
    if env_fault:
        env["ERLB_FAULT"] = env_fault
    proc = subprocess.run([exe] + args, env=env, cwd=cwd,
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    return proc.returncode, proc.stdout.decode("utf-8", "replace")


def strip_volatile(node, extra_keys=frozenset()):
    drop = VOLATILE_REPORT_KEYS | extra_keys
    if isinstance(node, dict):
        return {k: strip_volatile(v, extra_keys) for k, v in node.items()
                if k not in drop}
    if isinstance(node, list):
        return [strip_volatile(v, extra_keys) for v in node]
    return node


def read_bytes(path):
    with open(path, "rb") as f:
        return f.read()


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def sum_job_key(report, key):
    total = 0
    for stage in report.get("stages", []):
        job = stage.get("job")
        if job:
            total += job.get(key, 0)
    return total


def sum_resumed(report):
    return sum_job_key(report, "map_tasks_resumed")


class HarnessError(Exception):
    pass


def check(cond, msg):
    if not cond:
        raise HarnessError(msg)


def run_case(exe, work, input_csv, strategy, crash_site, trigger_hit):
    """One crash point: reference run, killed run, resumed run, diff."""
    label = f"{strategy}/{crash_site}@{trigger_hit}"
    case_dir = os.path.join(work, f"{strategy}-{crash_site.split('.')[1]}")
    os.makedirs(case_dir, exist_ok=True)
    temp_dir = os.path.join(case_dir, "tmp")
    os.makedirs(temp_dir, exist_ok=True)

    def args(tag, checkpoint_dir):
        return [
            input_csv,
            os.path.join(case_dir, f"{tag}_matches.csv"),
            strategy,
            "--execution=external",
            f"--temp-dir={temp_dir}",
            f"--checkpoint-dir={checkpoint_dir}",
            f"--plan-out={os.path.join(case_dir, tag + '_plan.json')}",
            f"--report-json={os.path.join(case_dir, tag + '_report.json')}",
        ]

    # Uninterrupted reference, checkpointed like the crashing run so the
    # reports compare field for field.
    rc, out = run_child(exe, args("ref", os.path.join(case_dir, "ck-ref")))
    check(rc == 0, f"{label}: reference run failed (rc={rc}):\n{out}")

    # Killed run: the fault fires SIGKILL mid-job.
    ck = os.path.join(case_dir, "ck")
    rc, out = run_child(exe, args("crash", ck),
                        env_fault=f"{crash_site}=kill@{trigger_hit}")
    check(rc == -signal.SIGKILL or rc == 128 + signal.SIGKILL,
          f"{label}: expected the child to be SIGKILLed, got rc={rc}:\n{out}")
    check(os.path.isdir(ck),
          f"{label}: no checkpoint directory survived the kill")

    # Orphaned spill dirs from the killed process must be swept by the
    # resumed run (their pids are dead); plant a synthetic one too.
    planted = os.path.join(temp_dir, "erlb-dataflow-999999999-0-dead")
    os.makedirs(planted, exist_ok=True)

    # Resume over the same checkpoint directory, no fault.
    rc, out = run_child(exe, args("res", ck))
    check(rc == 0, f"{label}: resumed run failed (rc={rc}):\n{out}")

    ref_matches = read_bytes(os.path.join(case_dir, "ref_matches.csv"))
    res_matches = read_bytes(os.path.join(case_dir, "res_matches.csv"))
    check(ref_matches == res_matches,
          f"{label}: resumed matches differ from the reference")
    check(len(ref_matches.splitlines()) > 1,
          f"{label}: reference found no matches — the input is too easy")

    # Not every strategy serializes a plan (Basic's match stage carries
    # none); the two runs must at least agree on that.
    ref_plan_path = os.path.join(case_dir, "ref_plan.json")
    res_plan_path = os.path.join(case_dir, "res_plan.json")
    check(os.path.exists(ref_plan_path) == os.path.exists(res_plan_path),
          f"{label}: only one of the runs serialized a match plan")
    if os.path.exists(ref_plan_path):
        check(read_bytes(ref_plan_path) == read_bytes(res_plan_path),
              f"{label}: resumed match plan differs from the reference")

    ref_report = load_report(os.path.join(case_dir, "ref_report.json"))
    res_report = load_report(os.path.join(case_dir, "res_report.json"))
    check(strip_volatile(copy.deepcopy(ref_report))
          == strip_volatile(copy.deepcopy(res_report)),
          f"{label}: resumed report differs from the reference beyond "
          "timings")
    check(sum_resumed(ref_report) == 0,
          f"{label}: the uninterrupted reference claims resumed tasks")
    check(sum_resumed(res_report) > 0,
          f"{label}: the resumed run re-executed everything — nothing "
          "was restored from the checkpoint")

    check(not os.path.isdir(planted),
          f"{label}: stale temp dir was not swept on resume")
    leftovers = [d for d in os.listdir(temp_dir)
                 if d.startswith("erlb-dataflow-")]
    check(not leftovers,
          f"{label}: orphaned spill dirs survived the resume: {leftovers}")

    # A successful run retires its checkpoint directory.
    check(not os.path.exists(ck),
          f"{label}: checkpoint directory not retired after success")

    log(f"{label}: OK (resumed {sum_resumed(res_report)} map tasks)")


def run_multiprocess_case(exe, work, input_csv, strategy):
    """Multi-process leg: a SIGKILLed worker mid-map must not change the
    output, and the job must finish without a rerun."""
    label = f"{strategy}/multiprocess"
    case_dir = os.path.join(work, f"{strategy}-multiprocess")
    os.makedirs(case_dir, exist_ok=True)
    temp_dir = os.path.join(case_dir, "tmp")
    os.makedirs(temp_dir, exist_ok=True)

    def args(tag, extra):
        return [
            input_csv,
            os.path.join(case_dir, f"{tag}_matches.csv"),
            strategy,
            f"--temp-dir={temp_dir}",
            f"--plan-out={os.path.join(case_dir, tag + '_plan.json')}",
            f"--report-json={os.path.join(case_dir, tag + '_report.json')}",
        ] + extra

    # Single-process external reference, 1-worker degenerate pool, and a
    # 4-worker pool that loses one worker mid-map: the parent poisons and
    # SIGKILLs the worker whose third DONE frame it takes (the input
    # spans ~5 map splits, so hit 3 lands inside the first map phase),
    # then adopts the dead worker's committed task from its commit
    # record instead of re-running it.
    runs = (("ext", ["--execution=external"], None),
            ("w1", ["--workers=1"], None),
            ("w4", ["--workers=4"], "worker.result=error@3"))
    for tag, extra, fault in runs:
        rc, out = run_child(exe, args(tag, extra), env_fault=fault)
        check(rc == 0, f"{label}: {tag} run failed (rc={rc}):\n{out}")

    ext_matches = read_bytes(os.path.join(case_dir, "ext_matches.csv"))
    check(len(ext_matches.splitlines()) > 1,
          f"{label}: reference found no matches — the input is too easy")
    for tag in ("w1", "w4"):
        got = read_bytes(os.path.join(case_dir, f"{tag}_matches.csv"))
        check(got == ext_matches,
              f"{label}: {tag} matches differ from single-process external")
        plan = os.path.join(case_dir, f"{tag}_plan.json")
        ref_plan = os.path.join(case_dir, "ext_plan.json")
        check(os.path.exists(plan) == os.path.exists(ref_plan),
              f"{label}: only one of ext/{tag} serialized a match plan")
        if os.path.exists(ref_plan):
            check(read_bytes(plan) == read_bytes(ref_plan),
                  f"{label}: {tag} match plan differs from the reference")

    # Reports agree across modes once wall-clock noise and the
    # multi-process-only keys are stripped.
    ext_report = load_report(os.path.join(case_dir, "ext_report.json"))
    w1_report = load_report(os.path.join(case_dir, "w1_report.json"))
    w4_report = load_report(os.path.join(case_dir, "w4_report.json"))
    stripped = [strip_volatile(copy.deepcopy(r), MULTIPROC_REPORT_KEYS)
                for r in (ext_report, w1_report, w4_report)]
    check(stripped[0] == stripped[1],
          f"{label}: --workers=1 report differs from single-process "
          "external beyond timings")
    check(stripped[0] == stripped[2],
          f"{label}: crashed --workers=4 report differs from the "
          "reference beyond timings")

    # The worker really died and its committed work was adopted.
    check(sum_job_key(w4_report, "worker_deaths") >= 1,
          f"{label}: the worker.result fault killed no worker")
    check(sum_resumed(w4_report) >= 1,
          f"{label}: no map task was adopted from the dead worker")
    check(sum_job_key(w1_report, "worker_deaths") == 0,
          f"{label}: the unfaulted --workers=1 run reports worker deaths")

    # Job temp roots (including the dead worker's claim subdir) are
    # cleaned up by the surviving coordinator.
    leftovers = [d for d in os.listdir(temp_dir)
                 if d.startswith("erlb-spill-")]
    check(not leftovers,
          f"{label}: multi-process job dirs survived: {leftovers}")

    log(f"{label}: OK ({sum_job_key(w4_report, 'worker_deaths')} worker "
        f"death, {sum_resumed(w4_report)} map task adopted)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--exe", required=True,
                        help="path to the csv_dedup example binary")
    parser.add_argument("--work-dir", required=True,
                        help="scratch directory (recreated)")
    parser.add_argument("--strategies", default=",".join(STRATEGIES),
                        help="comma-separated strategy subset")
    parser.add_argument("--rows", type=int, default=5000,
                        help="input rows (must span several CSV splits)")
    args = parser.parse_args()

    if args.rows <= 2 * SPLIT_RECORDS:
        parser.error(f"--rows must exceed {2 * SPLIT_RECORDS} so the "
                     "input spans several map tasks")

    work = os.path.abspath(args.work_dir)
    shutil.rmtree(work, ignore_errors=True)
    os.makedirs(work)
    input_csv = os.path.join(work, "input.csv")
    write_input_csv(input_csv, args.rows)
    log(f"input: {args.rows} rows, "
        f"{(args.rows + SPLIT_RECORDS - 1) // SPLIT_RECORDS} map splits")

    failures = []
    for strategy in args.strategies.split(","):
        strategy = strategy.strip()
        # Mid-map: the third map-task attempt dies with tasks 1-2
        # committed. Mid-reduce: all maps committed, second reduce dies.
        for site, hit in (("task.map", 3), ("task.reduce", 2)):
            try:
                run_case(args.exe, work, input_csv, strategy, site, hit)
            except HarnessError as e:
                failures.append(str(e))
                log(f"FAIL: {e}")
        try:
            run_multiprocess_case(args.exe, work, input_csv, strategy)
        except HarnessError as e:
            failures.append(str(e))
            log(f"FAIL: {e}")

    if failures:
        log(f"{len(failures)} case(s) failed")
        return 1
    log("all crash-resume cases pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
