#!/usr/bin/env python3
"""End-to-end smoke test for the erlb_serve daemon.

Starts the daemon, waits for its LISTENING line, then drives the client
subcommands over the Unix socket:

  1. probe a title twice         -> second identical batch hits the plan
                                    cache (same combined-BDM fingerprint);
  2. insert a record, re-probe   -> the new record is linked, and the
                                    insert invalidated the cached plans;
  3. remove the record, re-probe -> the pair is gone again;
  4. stats                       -> counters agree with the traffic;
  5. shutdown                    -> daemon exits cleanly.

Usage: serve_smoke.py <erlb_serve binary> <socket path>
"""

import subprocess
import sys

PROBE_TITLE = "laser turntable mk4"
INSERT_ID = "555000001"
CORPUS_SIZE = 800  # seeded by the daemon; counts toward its insert stat


def fail(msg, daemon=None):
    if daemon is not None:
        daemon.kill()
        out, _ = daemon.communicate(timeout=30)
        sys.stderr.write("--- daemon output ---\n%s\n" % out)
    sys.stderr.write("serve_smoke: FAIL: %s\n" % msg)
    sys.exit(1)


def client(binary, sock, *args):
    """Runs one client subcommand; returns its stdout lines."""
    proc = subprocess.run(
        [binary, args[0], sock, *args[1:]],
        capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        fail("client %s failed (rc=%d): %s"
             % (args, proc.returncode, proc.stderr.strip()))
    return proc.stdout.strip().splitlines()


def parse_stats(lines):
    stats = {}
    for line in lines:
        key, _, value = line.partition("=")
        stats[key] = int(value)
    return stats


def probe_pairs(binary, sock, title):
    lines = client(binary, sock, "probe", title)
    if not lines or not lines[0].startswith("pairs="):
        fail("malformed probe output: %r" % lines)
    return int(lines[0].split("=", 1)[1])


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    binary, sock = sys.argv[1], sys.argv[2]

    daemon = subprocess.Popen(
        [binary, "serve", sock, str(CORPUS_SIZE)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        line = daemon.stdout.readline()
        if not line.startswith("LISTENING"):
            fail("daemon did not announce LISTENING: %r" % line, daemon)

        # 1. The same probe twice: the second identical batch leaves the
        # combined BDM fingerprint unchanged, so its plan must come from
        # the cache.
        before = probe_pairs(binary, sock, PROBE_TITLE)
        probe_pairs(binary, sock, PROBE_TITLE)
        stats = parse_stats(client(binary, sock, "stats"))
        if stats["plan_cache_hits"] < 1:
            fail("expected a plan-cache hit after identical probes; "
                 "stats=%r" % stats, daemon)
        if stats["plan_cache_misses"] < 1:
            fail("expected at least one plan-cache miss; stats=%r" % stats,
                 daemon)

        # 2. Insert a record whose title equals the probe: the re-probe
        # must link it, and the corpus mutation must have invalidated the
        # cached plans.
        client(binary, sock, "insert", INSERT_ID, PROBE_TITLE)
        after = probe_pairs(binary, sock, PROBE_TITLE)
        if after != before + 1:
            fail("expected exactly one new pair after insert "
                 "(before=%d after=%d)" % (before, after), daemon)
        stats = parse_stats(client(binary, sock, "stats"))
        if stats["plan_cache_invalidations"] < 1:
            fail("insert did not invalidate cached plans; stats=%r" % stats,
                 daemon)
        if stats["inserts"] != CORPUS_SIZE + 1:
            fail("stats inserts=%d, want %d"
                 % (stats["inserts"], CORPUS_SIZE + 1), daemon)

        # 3. Remove it again: the pair disappears.
        client(binary, sock, "remove", INSERT_ID)
        if probe_pairs(binary, sock, PROBE_TITLE) != before:
            fail("pair survived the remove", daemon)

        # 4. Final counter check.
        stats = parse_stats(client(binary, sock, "stats"))
        if stats["removes"] != 1:
            fail("stats removes=%d, want 1" % stats["removes"], daemon)
        if stats["batches_run"] < 4:
            fail("stats batches_run=%d, want >= 4" % stats["batches_run"],
                 daemon)
        if stats["probes_served"] < 4:
            fail("stats probes_served=%d, want >= 4"
                 % stats["probes_served"], daemon)

        # 5. Clean shutdown.
        client(binary, sock, "shutdown")
        if daemon.wait(timeout=60) != 0:
            fail("daemon exited nonzero", daemon)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)

    print("serve_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
