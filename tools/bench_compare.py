#!/usr/bin/env python3
"""CI bench-regression gate: diff fresh BENCH_*.json runs against the
committed baselines and fail on significant throughput regressions.

Stdlib only. Usage:

    bench_compare.py [--threshold 0.25] [--summary out.md]
                     BASELINE:CURRENT[:ratios] [BASELINE:CURRENT ...]
    bench_compare.py --selftest

A pair suffixed `:ratios` gates only its "speedup"/ratio entries and
demotes absolute-time entries to informational — the right setting for
macro benchmarks whose wall times are machine-dependent (CI hardware
differs from the machine that produced the committed baseline), while
same-run ratios transfer.

Each positional argument pairs a committed baseline document with the
JSON the CI run just produced. Result entries are matched by name and
classified:

  * entries with "nanos_per_op"  — gated; current > baseline * (1 + t)
    is a regression (lower is better).
  * entries with "speedup"      — gated; current < baseline * (1 - t)
    is a regression (higher is better). These are same-run ratios
    (before/after kernels, external-vs-in-memory), so they stay
    meaningful across differing CI hardware.
  * entries with "value"        — informational only (peak RSS etc.).

Entries present on only one side are reported but never fail the gate
(renames would otherwise break every PR that adds a benchmark). The
markdown summary is written to --summary and, when the environment
provides it, appended to $GITHUB_STEP_SUMMARY. Exit code 1 iff any gated
entry regressed.
"""

import argparse
import json
import os
import sys


def load_results(path):
    """Returns {name: entry_dict} for one BENCH_*.json document."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("results", []):
        out[entry["name"]] = entry
    return out


def classify(entry):
    if "nanos_per_op" in entry:
        return "time"
    if "speedup" in entry:
        return "ratio"
    return "info"


def compare_documents(baseline, current, threshold, ratios_only=False):
    """Compares two {name: entry} maps.

    Returns (rows, regressions) where rows is a list of
    (name, kind, baseline_value, current_value, delta_fraction, verdict).
    delta_fraction is signed so that positive always means "worse".
    With ratios_only, absolute-time entries are reported but never gate.
    """
    rows = []
    regressions = []
    for name in sorted(set(baseline) | set(current)):
        b = baseline.get(name)
        c = current.get(name)
        if b is None or c is None:
            rows.append((name, "missing", b, c, None, "skipped"))
            continue
        kind = classify(b)
        if kind != classify(c):
            rows.append((name, "mismatch", b, c, None, "skipped"))
            continue
        if kind == "time":
            bv, cv = b["nanos_per_op"], c["nanos_per_op"]
            if bv <= 0:
                rows.append((name, kind, bv, cv, None, "skipped"))
                continue
            if ratios_only:
                delta = cv / bv - 1.0
                rows.append((name, kind, bv, cv, delta, "info"))
                continue
            delta = cv / bv - 1.0  # positive = slower = worse
        elif kind == "ratio":
            bv, cv = b["speedup"], c["speedup"]
            if bv <= 0:
                rows.append((name, kind, bv, cv, None, "skipped"))
                continue
            delta = 1.0 - cv / bv  # positive = ratio dropped = worse
        else:
            bv = b.get("value")
            cv = c.get("value")
            rows.append((name, kind, bv, cv, None, "info"))
            continue
        verdict = "REGRESSION" if delta > threshold else "ok"
        rows.append((name, kind, bv, cv, delta, verdict))
        if verdict == "REGRESSION":
            regressions.append(name)
    return rows, regressions


def format_value(kind, value):
    if value is None:
        return "—"
    if kind == "time":
        return f"{value:,.0f} ns"
    return f"{value:.3f}"


def render_markdown(title, rows, threshold):
    lines = [
        f"### {title}",
        "",
        f"gate: fail on > {threshold:.0%} regression "
        "(times lower-is-better, ratios higher-is-better; "
        "`value` rows informational)",
        "",
        "| benchmark | kind | baseline | current | delta | verdict |",
        "|---|---|---:|---:|---:|---|",
    ]
    for name, kind, bv, cv, delta, verdict in rows:
        if kind in ("missing", "mismatch"):
            lines.append(f"| `{name}` | {kind} | — | — | — | {verdict} |")
            continue
        delta_str = "—" if delta is None else f"{delta:+.1%}"
        mark = "❌" if verdict == "REGRESSION" else ""
        lines.append(
            f"| `{name}` | {kind} | {format_value(kind, bv)} | "
            f"{format_value(kind, cv)} | {delta_str} | {verdict} {mark} |"
        )
    lines.append("")
    return "\n".join(lines)


def run_compare(pairs, threshold, summary_path):
    all_markdown = []
    all_regressions = []
    for baseline_path, current_path, ratios_only in pairs:
        baseline = load_results(baseline_path)
        current = load_results(current_path)
        rows, regressions = compare_documents(baseline, current, threshold,
                                              ratios_only)
        title = os.path.basename(baseline_path)
        if ratios_only:
            title += " (ratios gated, times informational)"
        all_markdown.append(render_markdown(title, rows, threshold))
        all_regressions.extend(f"{title}: {name}" for name in regressions)
        print(f"-- {title}: {len(rows)} entries, "
              f"{len(regressions)} regression(s)")
        for name, kind, bv, cv, delta, verdict in rows:
            if verdict == "REGRESSION":
                print(f"   REGRESSION {name}: baseline "
                      f"{format_value(kind, bv)} -> current "
                      f"{format_value(kind, cv)} ({delta:+.1%})")

    markdown = "\n".join(all_markdown)
    if all_regressions:
        markdown += (
            f"\n**{len(all_regressions)} benchmark regression(s) beyond "
            f"the {threshold:.0%} gate.**\n"
        )
    else:
        markdown += "\nAll gated benchmarks within threshold. ✅\n"

    if summary_path:
        with open(summary_path, "w", encoding="utf-8") as f:
            f.write(markdown)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a", encoding="utf-8") as f:
            f.write(markdown)

    if all_regressions:
        print(f"FAILED: {len(all_regressions)} regression(s)")
        return 1
    print("bench gate passed")
    return 0


def selftest():
    """Exercises the gate logic on synthetic documents, including the
    injected-regression case the CI gate must catch."""
    baseline = {
        "fast": {"name": "fast", "nanos_per_op": 100.0},
        "steady": {"name": "steady", "nanos_per_op": 1000.0},
        "ratio": {"name": "ratio", "speedup": 2.0},
        "rss": {"name": "rss", "value": 5000.0},
    }

    # Identical run: passes.
    rows, regs = compare_documents(baseline, dict(baseline), 0.25)
    assert not regs, regs

    # Small drift inside the gate: passes.
    drift = {
        "fast": {"name": "fast", "nanos_per_op": 120.0},
        "steady": {"name": "steady", "nanos_per_op": 900.0},
        "ratio": {"name": "ratio", "speedup": 1.8},
        "rss": {"name": "rss", "value": 9000.0},  # info only, never gates
    }
    rows, regs = compare_documents(baseline, drift, 0.25)
    assert not regs, regs

    # Injected synthetic regression: 2x slower must fail the gate.
    slow = dict(drift)
    slow["steady"] = {"name": "steady", "nanos_per_op": 2000.0}
    rows, regs = compare_documents(baseline, slow, 0.25)
    assert regs == ["steady"], regs

    # Collapsed ratio (external mode suddenly 3x slower relative to
    # in-memory) must fail too.
    bad_ratio = dict(drift)
    bad_ratio["ratio"] = {"name": "ratio", "speedup": 0.6}
    rows, regs = compare_documents(baseline, bad_ratio, 0.25)
    assert "ratio" in regs, regs

    # New/removed benchmarks are reported but do not gate.
    extra = dict(drift)
    extra["brand_new"] = {"name": "brand_new", "nanos_per_op": 1.0}
    del extra["fast"]
    rows, regs = compare_documents(baseline, extra, 0.25)
    assert not regs, regs
    kinds = {name: kind for name, kind, *_ in rows}
    assert kinds["brand_new"] == "missing"
    assert kinds["fast"] == "missing"

    # ratios_only: absolute-time regressions are demoted to info, but a
    # collapsed ratio still fails.
    rows, regs = compare_documents(baseline, slow, 0.25, ratios_only=True)
    assert not regs, regs
    rows, regs = compare_documents(baseline, bad_ratio, 0.25,
                                   ratios_only=True)
    assert regs == ["ratio"], regs

    # Markdown renders without blowing up.
    md = render_markdown("selftest", rows, 0.25)
    assert "benchmark" in md
    print("bench_compare selftest passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("pairs", nargs="*",
                        help="BASELINE:CURRENT json path pairs")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional regression tolerance "
                             "(default 0.25)")
    parser.add_argument("--summary", default="",
                        help="also write the markdown summary here")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in logic checks and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.pairs:
        parser.error("no BASELINE:CURRENT pairs given")
    pairs = []
    for raw in args.pairs:
        ratios_only = raw.endswith(":ratios")
        if ratios_only:
            raw = raw[: -len(":ratios")]
        if ":" not in raw:
            parser.error(f"expected BASELINE:CURRENT[:ratios], got '{raw}'")
        baseline_path, current_path = raw.split(":", 1)
        for p in (baseline_path, current_path):
            if not os.path.exists(p):
                parser.error(f"no such file: {p}")
        pairs.append((baseline_path, current_path, ratios_only))
    return run_compare(pairs, args.threshold, args.summary)


if __name__ == "__main__":
    sys.exit(main())
