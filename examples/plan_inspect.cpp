// Plan-first workflow: build a strategy's exact MatchPlan from the BDM
// alone (no entity comparisons) — as a one-stage dataflow whose report
// carries the built plan — inspect its per-task workload, serialize it
// to JSON, reload it, and project the *reloaded* plan on a simulated
// cluster. Planning, inspection, caching, and simulation all share one
// artifact, and the planning step is the same PlanStage the full
// pipeline graph runs.
//
//   $ ./plan_inspect [strategy] [skew] [r] [plan.json]
//
// strategy: Basic | BlockSplit | PairRange (case-insensitive)
#include <cstdio>
#include <cstdlib>

#include "bdm/bdm.h"
#include "common/string_util.h"
#include "core/dataflow.h"
#include "core/stages.h"
#include "er/blocking.h"
#include "gen/skew_gen.h"
#include "lb/plan_io.h"
#include "lb/strategy.h"
#include "sim/er_sim.h"

using namespace erlb;

int main(int argc, char** argv) {
  // CLI parsing via StrategyKindFromName, the inverse of StrategyName.
  lb::StrategyKind kind = lb::StrategyKind::kBlockSplit;
  if (argc > 1) {
    auto parsed = lb::StrategyKindFromName(argv[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr,
                   "%s\nusage: plan_inspect [%s] [skew] [r] [plan.json]\n",
                   parsed.status().ToString().c_str(),
                   lb::JoinStrategyKindNames("|").c_str());
      return 1;
    }
    kind = *parsed;
  }
  double skew = argc > 2 ? std::strtod(argv[2], nullptr) : 0.8;
  uint32_t r = argc > 3
                   ? static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10))
                   : 20;
  std::string plan_path = argc > 4 ? argv[4] : "/tmp/erlb_match_plan.json";

  // A skewed dataset, described to the planner as its BDM.
  gen::SkewConfig cfg;
  cfg.num_entities = 20000;
  cfg.num_blocks = 50;
  cfg.skew = skew;
  auto entities = gen::GenerateSkewed(cfg);
  if (!entities.ok()) return 1;
  const uint32_t m = 8;
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  std::vector<std::vector<std::string>> keys(m);
  for (size_t i = 0; i < entities->size(); ++i) {
    keys[i * m / entities->size()].push_back(blocking.Key((*entities)[i]));
  }
  auto bdm = bdm::Bdm::FromKeys(keys);
  if (!bdm.ok()) return 1;

  // 1. Plan: the full decision record, from the BDM alone — a one-stage
  // dataflow (bdm dataset in, plan dataset out) whose stage report hands
  // back the built plan.
  lb::MatchJobOptions options;
  options.num_reduce_tasks = r;
  core::Dataflow df;
  if (auto st = df.AddInput(core::kDatasetBdm, core::Dataset(*bdm));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  df.Emplace<core::PlanStage>("plan", core::kDatasetBdm,
                              core::kDatasetPlan, kind, options);
  auto report = df.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "plan dataflow: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const lb::MatchPlan> plan = report->Find("plan")->plan;
  const lb::PlanStats& stats = plan->stats();
  std::printf("%s plan over %u blocks, m=%u, r=%u:\n",
              lb::StrategyName(kind), bdm->num_blocks(),
              bdm->num_partitions(), r);
  std::printf("  total comparisons : %s\n",
              FormatWithCommas(stats.total_comparisons).c_str());
  std::printf("  map KV pairs      : %s\n",
              FormatWithCommas(stats.TotalMapOutputPairs()).c_str());
  std::printf("  max / mean reduce : %s / %s  (imbalance %sx)\n",
              FormatWithCommas(stats.MaxReduceComparisons()).c_str(),
              FormatWithCommas(stats.total_comparisons / r).c_str(),
              FormatDouble(stats.ReduceImbalance(), 2).c_str());
  if (const lb::BlockSplitPlanBody* body = plan->block_split()) {
    std::printf("  match tasks       : %zu (split threshold %s)\n",
                body->plan.tasks().size(),
                FormatWithCommas(
                    body->plan.comparisons_per_reduce_task_avg())
                    .c_str());
  } else if (const lb::PairRangePlanBody* body = plan->pair_range()) {
    std::printf("  pair ranges       : %zu boundaries, last = %s\n",
                body->range_begin.size(),
                FormatWithCommas(body->range_begin.back()).c_str());
  }

  // 2. Serialize and reload: the plan is a cacheable artifact.
  if (auto st = lb::SaveMatchPlan(plan_path, *plan); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto reloaded = lb::LoadMatchPlan(plan_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  bool identical =
      lb::MatchPlanToJson(*plan) == lb::MatchPlanToJson(*reloaded);
  std::printf("\nwrote %s; reload %s\n", plan_path.c_str(),
              identical ? "round-trips byte-identically" : "DIFFERS!");
  if (!identical) return 1;

  // 3. Simulate from the reloaded plan — no re-planning.
  sim::ClusterConfig cluster;
  cluster.num_nodes = 10;
  sim::CostModel cost;
  auto projected = sim::SimulateMatchPlan(*reloaded, *bdm, cluster, cost);
  if (!projected.ok()) return 1;
  std::printf("projected on %u nodes: %.1f s total "
              "(BDM job %.1f s, match map %.1f s, match reduce %.1f s)\n",
              cluster.num_nodes, projected->total_s, projected->bdm_job_s,
              projected->match_map_phase_s,
              projected->match_reduce_phase_s);
  return 0;
}
