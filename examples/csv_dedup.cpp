// Deduplicate a CSV file end-to-end on the composable dataflow: a
// CsvSourceStage streams the file through the chunked, bounded-memory
// ingest, the standard BDM -> plan -> match chain runs the load-balanced
// pipeline (auto-selecting the out-of-core shuffle for large inputs),
// a ClusterStage closes the matches transitively, and the matched id
// pairs are written back out as CSV — the shape of a production batch
// job. With no arguments it generates a demo input first.
//
//   $ ./csv_dedup [flags] [input.csv [output.csv [strategy]]]
//
// Input format: header row, then one entity per row; column 0 = id,
// remaining columns = fields (column 1 is matched on). `strategy` is
// Basic, BlockSplit (default), PairRange, or "auto" — auto runs the
// analysis subgraph first, asks the simulator-backed recommender to pick
// the strategy from the BDM, and executes the recommended plan in a
// second graph (simulation in the loop).
//
// Flags (the fault-tolerance surface driven by tools/crash_harness.py):
//   --execution=auto|in-memory|external   shuffle mode (default auto)
//   --workers=N           shared-nothing execution: fork N worker
//                         processes per job (multi-process mode); the
//                         output is byte-identical to --workers=1 and to
//                         the single-process modes
//   --temp-dir=DIR        spill root for external jobs
//   --checkpoint-dir=DIR  durable checkpoints; a rerun after a crash
//                         resumes past committed map tasks
//   --plan-out=FILE       write the executed match plan as JSON
//   --report-json=FILE    write the dataflow report as JSON
//
// The ERLB_FAULT environment variable arms fault-injection sites
// (common/fault.h), e.g. ERLB_FAULT="task.map=kill@3" kills the process
// on the third map task — which is how the crash harness exercises the
// checkpoint/resume path.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/dataflow.h"
#include "core/report.h"
#include "core/stages.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "er/blocking.h"
#include "er/entity_io.h"
#include "er/matcher.h"
#include "gen/product_gen.h"
#include "lb/plan_io.h"
#include "sim/recommend.h"

using namespace erlb;

namespace {

constexpr uint32_t kReduceTasks = 32;
constexpr uint32_t kSplitRecords = 1024;

struct Cli {
  std::string input = "/tmp/erlb_demo_products.csv";
  std::string output = "/tmp/erlb_demo_matches.csv";
  bool input_given = false;
  bool auto_strategy = false;
  lb::StrategyKind strategy = lb::StrategyKind::kBlockSplit;
  mr::ExecutionOptions execution;
  std::string plan_out;
  std::string report_json;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

bool ParseCli(int argc, char** argv, Cli* cli) {
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      auto eq = arg.find('=');
      std::string_view name = arg.substr(0, eq);
      std::string value =
          eq == std::string_view::npos ? "" : std::string(arg.substr(eq + 1));
      if (name == "--execution") {
        if (value == "auto") {
          cli->execution.mode = mr::ExecutionMode::kAuto;
        } else if (value == "in-memory") {
          cli->execution.mode = mr::ExecutionMode::kInMemory;
        } else if (value == "external") {
          cli->execution.mode = mr::ExecutionMode::kExternal;
        } else {
          std::fprintf(stderr, "unknown --execution mode \"%s\"\n",
                       value.c_str());
          return false;
        }
      } else if (name == "--workers") {
        int workers = std::atoi(value.c_str());
        if (workers < 1) {
          std::fprintf(stderr, "--workers needs a positive count, got "
                       "\"%s\"\n", value.c_str());
          return false;
        }
        cli->execution.mode = mr::ExecutionMode::kMultiProcess;
        cli->execution.num_worker_processes = static_cast<uint32_t>(workers);
      } else if (name == "--temp-dir") {
        cli->execution.temp_dir = value;
      } else if (name == "--checkpoint-dir") {
        cli->execution.checkpoint.dir = value;
      } else if (name == "--plan-out") {
        cli->plan_out = value;
      } else if (name == "--report-json") {
        cli->report_json = value;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", std::string(arg).c_str());
        return false;
      }
      continue;
    }
    switch (positional++) {
      case 0:
        cli->input = arg;
        cli->input_given = true;
        break;
      case 1:
        cli->output = arg;
        break;
      case 2: {
        if (arg == "auto") {
          cli->auto_strategy = true;
          break;
        }
        auto parsed = lb::StrategyKindFromName(std::string(arg));
        if (!parsed.ok()) {
          std::fprintf(stderr, "%s\nusage: strategy is %s, or auto\n",
                       parsed.status().ToString().c_str(),
                       lb::JoinStrategyKindNames("|").c_str());
          return false;
        }
        cli->strategy = *parsed;
        break;
      }
      default:
        std::fprintf(stderr, "too many arguments: %s\n",
                     std::string(arg).c_str());
        return false;
    }
  }
  return true;
}

core::DataflowOptions DataflowOptionsFor(const Cli& cli) {
  core::DataflowOptions options;
  options.execution = cli.execution;
  return options;
}

/// Prints the run summary shared by both modes and writes the output CSV
/// plus the optional plan/report artifacts the crash harness diffs.
int Report(const core::Dataflow& df, const core::DataflowReport& report,
           const Cli& cli) {
  const core::StageReport* match = report.Find("match");
  const core::StageReport* cluster = report.Find("cluster");
  ERLB_CHECK(match != nullptr && match->job.has_value());
  std::printf("%s", core::FormatDataflowReport(report).c_str());
  std::printf("ingested from %s (%zu splits, %s shuffle)\n",
              cli.input.c_str(), match->job->map_tasks.size(),
              match->job->multi_process
                  ? "multi-process"
                  : match->job->external ? "external" : "in-memory");

  auto matches = df.Get<er::MatchResult>(core::kDatasetMatches);
  if (!matches.ok()) return Fail(matches.status());
  if (auto st = er::SaveMatchesToCsv(cli.output, **matches); !st.ok()) {
    return Fail(st);
  }
  if (!cli.plan_out.empty() && match->plan != nullptr) {
    if (auto st = lb::SaveMatchPlan(cli.plan_out, *match->plan); !st.ok()) {
      return Fail(st);
    }
  }
  if (!cli.report_json.empty()) {
    std::ofstream out(cli.report_json, std::ios::binary | std::ios::trunc);
    out << core::DataflowReportToJson(report) << "\n";
    if (!out) {
      return Fail(Status::IOError("cannot write " + cli.report_json));
    }
  }
  std::printf(
      "compared %s candidate pairs in %.2f s; wrote %s matched pairs "
      "(%s duplicate clusters) to %s\n",
      FormatWithCommas(report.TotalComparisons()).c_str(),
      report.total_seconds, FormatWithCommas((*matches)->size()).c_str(),
      cluster != nullptr
          ? FormatWithCommas(cluster->output_records).c_str()
          : "?",
      cli.output.c_str());
  return 0;
}

/// Fixed-strategy mode: one graph — source -> standard chain -> cluster.
int RunFixed(const Cli& cli, const er::CsvSchema& schema,
             const er::BlockingFunction& blocking,
             const er::Matcher& matcher) {
  core::Dataflow df(DataflowOptionsFor(cli));
  df.Emplace<core::CsvSourceStage>("ingest", core::kDatasetPartitions,
                                   cli.input, schema, kSplitRecords);
  core::StandardGraphOptions graph;
  graph.strategy = cli.strategy;
  graph.num_reduce_tasks = kReduceTasks;
  if (auto st = core::AddStandardGraph(&df, graph, &blocking, &matcher);
      !st.ok()) {
    return Fail(st);
  }
  df.Emplace<core::ClusterStage>("cluster", core::kDatasetMatches,
                                 core::kDatasetClusters);
  auto report = df.Run();
  if (!report.ok()) return Fail(report.status());
  return Report(df, *report, cli);
}

/// Auto mode: analysis graph -> recommender -> execution graph. The BDM
/// and annotated store cross between the graphs as datasets, and the
/// recommended plan enters the second graph as an input — nothing is
/// recomputed or re-planned.
int RunAuto(const Cli& cli, const er::CsvSchema& schema,
            const er::BlockingFunction& blocking,
            const er::Matcher& matcher) {
  core::Dataflow analysis(DataflowOptionsFor(cli));
  analysis.Emplace<core::CsvSourceStage>("ingest", core::kDatasetPartitions,
                                         cli.input, schema, kSplitRecords);
  core::BdmStageOptions bdm_options;
  bdm_options.num_reduce_tasks = kReduceTasks;
  analysis.Emplace<core::BdmStage>("bdm", core::kDatasetPartitions,
                                   core::kDatasetBdm,
                                   core::kDatasetAnnotated, &blocking,
                                   bdm_options);
  auto analysis_report = analysis.Run();
  if (!analysis_report.ok()) return Fail(analysis_report.status());
  std::printf("%s", core::FormatDataflowReport(*analysis_report).c_str());

  auto bdm = analysis.Take<bdm::Bdm>(core::kDatasetBdm);
  if (!bdm.ok()) return Fail(bdm.status());
  auto annotated = analysis.Take<std::shared_ptr<bdm::AnnotatedStore>>(
      core::kDatasetAnnotated);
  if (!annotated.ok()) return Fail(annotated.status());

  sim::ClusterConfig cluster;
  sim::CostModel cost;
  auto rec = sim::RecommendStrategy(*bdm, kReduceTasks, cluster, cost);
  if (!rec.ok()) return Fail(rec.status());
  std::printf("recommender: %s\n", rec->rationale.c_str());

  core::Dataflow execution(DataflowOptionsFor(cli));
  Status st = execution.AddInput(core::kDatasetBdm,
                                 core::Dataset(std::move(*bdm)));
  if (st.ok()) {
    st = execution.AddInput(core::kDatasetAnnotated,
                            core::Dataset(std::move(*annotated)));
  }
  if (st.ok()) {
    st = execution.AddInput(
        core::kDatasetPlan,
        core::Dataset(std::make_shared<const lb::MatchPlan>(
            rec->chosen_plan())));
  }
  if (!st.ok()) return Fail(st);
  execution.Emplace<core::MatchStage>("match", core::kDatasetPlan,
                                      core::kDatasetAnnotated,
                                      core::kDatasetBdm,
                                      core::kDatasetMatches, &matcher);
  execution.Emplace<core::ClusterStage>("cluster", core::kDatasetMatches,
                                        core::kDatasetClusters);
  auto report = execution.Run();
  if (!report.ok()) return Fail(report.status());
  return Report(execution, *report, cli);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!ParseCli(argc, argv, &cli)) return 1;
  if (auto st = FaultInjector::Global().ConfigureFromEnv(); !st.ok()) {
    return Fail(st);
  }

  if (!cli.input_given) {
    // No input given: generate a demo catalog.
    gen::ProductConfig cfg;
    cfg.num_entities = 5000;
    cfg.duplicate_fraction = 0.25;
    auto demo = gen::GenerateProducts(cfg);
    if (!demo.ok()) return 1;
    if (auto st = er::SaveEntitiesToCsv(cli.input, *demo); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote demo input: %s\n", cli.input.c_str());
  }

  er::CsvSchema schema;
  schema.id_column = 0;
  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  return cli.auto_strategy ? RunAuto(cli, schema, blocking, matcher)
                           : RunFixed(cli, schema, blocking, matcher);
}
