// Deduplicate a CSV file end-to-end: stream the file through the
// chunked, bounded-memory ingest, run the load-balanced pipeline (with
// auto-selected out-of-core shuffle for large inputs), and write the
// matched id pairs back out as CSV — the shape of a production batch
// job. With no arguments it generates a demo input first.
//
//   $ ./csv_dedup [input.csv [output.csv [strategy]]]
//
// Input format: header row, then one entity per row; column 0 = id,
// remaining columns = fields (column 1 is matched on). `strategy` is
// Basic, BlockSplit (default), or PairRange.
#include <cstdio>

#include "core/pipeline.h"
#include "common/string_util.h"
#include "er/blocking.h"
#include "er/entity_io.h"
#include "er/matcher.h"
#include "gen/product_gen.h"

using namespace erlb;

int main(int argc, char** argv) {
  std::string input = argc > 1 ? argv[1] : "/tmp/erlb_demo_products.csv";
  std::string output = argc > 2 ? argv[2] : "/tmp/erlb_demo_matches.csv";
  lb::StrategyKind strategy = lb::StrategyKind::kBlockSplit;
  if (argc > 3) {
    auto parsed = lb::StrategyKindFromName(argv[3]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    strategy = *parsed;
  }

  if (argc <= 1) {
    // No input given: generate a demo catalog.
    gen::ProductConfig cfg;
    cfg.num_entities = 5000;
    cfg.duplicate_fraction = 0.25;
    auto demo = gen::GenerateProducts(cfg);
    if (!demo.ok()) return 1;
    if (auto st = er::SaveEntitiesToCsv(input, *demo); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote demo input: %s\n", input.c_str());
  }

  er::CsvSchema schema;
  schema.id_column = 0;
  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  // Chunked ingest: each csv_split_records rows of the file become one
  // bounded-memory input split, and the default kAuto execution mode
  // spills the shuffle to disk when the input outgrows the threshold.
  core::ErPipeline pipeline = core::ErPipelineBuilder()
                                  .Strategy(strategy)
                                  .ReduceTasks(32)
                                  .CsvSplitRecords(1024)
                                  .Build();

  auto result = pipeline.DeduplicateCsv(input, schema, blocking, matcher);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested %s entities from %s (%zu splits, %s shuffle)\n",
              FormatWithCommas(
                  result->match_metrics.TotalMapInputRecords())
                  .c_str(),
              input.c_str(), result->bdm_metrics.map_tasks.size(),
              result->match_metrics.external ? "external" : "in-memory");
  if (auto st = er::SaveMatchesToCsv(output, result->matches); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "compared %s candidate pairs in %.2f s (%u blocks); wrote %s "
      "matched pairs to %s\n",
      FormatWithCommas(result->comparisons).c_str(),
      result->total_seconds, result->bdm.num_blocks(),
      FormatWithCommas(result->matches.size()).c_str(), output.c_str());
  return 0;
}
