// Deduplicate a CSV file end-to-end on the composable dataflow: a
// CsvSourceStage streams the file through the chunked, bounded-memory
// ingest, the standard BDM -> plan -> match chain runs the load-balanced
// pipeline (auto-selecting the out-of-core shuffle for large inputs),
// a ClusterStage closes the matches transitively, and the matched id
// pairs are written back out as CSV — the shape of a production batch
// job. With no arguments it generates a demo input first.
//
//   $ ./csv_dedup [input.csv [output.csv [strategy]]]
//
// Input format: header row, then one entity per row; column 0 = id,
// remaining columns = fields (column 1 is matched on). `strategy` is
// Basic, BlockSplit (default), PairRange, or "auto" — auto runs the
// analysis subgraph first, asks the simulator-backed recommender to pick
// the strategy from the BDM, and executes the recommended plan in a
// second graph (simulation in the loop).
#include <cstdio>

#include "core/dataflow.h"
#include "core/report.h"
#include "core/stages.h"
#include "common/string_util.h"
#include "er/blocking.h"
#include "er/entity_io.h"
#include "er/matcher.h"
#include "gen/product_gen.h"
#include "sim/recommend.h"

using namespace erlb;

namespace {

constexpr uint32_t kReduceTasks = 32;
constexpr uint32_t kSplitRecords = 1024;

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

/// Prints the run summary shared by both modes and writes the output CSV.
int Report(const core::Dataflow& df, const core::DataflowReport& report,
           const std::string& input, const std::string& output) {
  const core::StageReport* match = report.Find("match");
  const core::StageReport* cluster = report.Find("cluster");
  ERLB_CHECK(match != nullptr && match->job.has_value());
  std::printf("%s", core::FormatDataflowReport(report).c_str());
  std::printf("ingested from %s (%zu splits, %s shuffle)\n", input.c_str(),
              match->job->map_tasks.size(),
              match->job->external ? "external" : "in-memory");

  auto matches = df.Get<er::MatchResult>(core::kDatasetMatches);
  if (!matches.ok()) return Fail(matches.status());
  if (auto st = er::SaveMatchesToCsv(output, **matches); !st.ok()) {
    return Fail(st);
  }
  std::printf(
      "compared %s candidate pairs in %.2f s; wrote %s matched pairs "
      "(%s duplicate clusters) to %s\n",
      FormatWithCommas(report.TotalComparisons()).c_str(),
      report.total_seconds, FormatWithCommas((*matches)->size()).c_str(),
      cluster != nullptr
          ? FormatWithCommas(cluster->output_records).c_str()
          : "?",
      output.c_str());
  return 0;
}

/// Fixed-strategy mode: one graph — source -> standard chain -> cluster.
int RunFixed(lb::StrategyKind strategy, const std::string& input,
             const std::string& output, const er::CsvSchema& schema,
             const er::BlockingFunction& blocking,
             const er::Matcher& matcher) {
  core::Dataflow df;
  df.Emplace<core::CsvSourceStage>("ingest", core::kDatasetPartitions,
                                   input, schema, kSplitRecords);
  core::StandardGraphOptions graph;
  graph.strategy = strategy;
  graph.num_reduce_tasks = kReduceTasks;
  if (auto st = core::AddStandardGraph(&df, graph, &blocking, &matcher);
      !st.ok()) {
    return Fail(st);
  }
  df.Emplace<core::ClusterStage>("cluster", core::kDatasetMatches,
                                 core::kDatasetClusters);
  auto report = df.Run();
  if (!report.ok()) return Fail(report.status());
  return Report(df, *report, input, output);
}

/// Auto mode: analysis graph -> recommender -> execution graph. The BDM
/// and annotated store cross between the graphs as datasets, and the
/// recommended plan enters the second graph as an input — nothing is
/// recomputed or re-planned.
int RunAuto(const std::string& input, const std::string& output,
            const er::CsvSchema& schema,
            const er::BlockingFunction& blocking,
            const er::Matcher& matcher) {
  core::Dataflow analysis;
  analysis.Emplace<core::CsvSourceStage>("ingest", core::kDatasetPartitions,
                                         input, schema, kSplitRecords);
  core::BdmStageOptions bdm_options;
  bdm_options.num_reduce_tasks = kReduceTasks;
  analysis.Emplace<core::BdmStage>("bdm", core::kDatasetPartitions,
                                   core::kDatasetBdm,
                                   core::kDatasetAnnotated, &blocking,
                                   bdm_options);
  auto analysis_report = analysis.Run();
  if (!analysis_report.ok()) return Fail(analysis_report.status());
  std::printf("%s", core::FormatDataflowReport(*analysis_report).c_str());

  auto bdm = analysis.Take<bdm::Bdm>(core::kDatasetBdm);
  if (!bdm.ok()) return Fail(bdm.status());
  auto annotated = analysis.Take<std::shared_ptr<bdm::AnnotatedStore>>(
      core::kDatasetAnnotated);
  if (!annotated.ok()) return Fail(annotated.status());

  sim::ClusterConfig cluster;
  sim::CostModel cost;
  auto rec = sim::RecommendStrategy(*bdm, kReduceTasks, cluster, cost);
  if (!rec.ok()) return Fail(rec.status());
  std::printf("recommender: %s\n", rec->rationale.c_str());

  core::Dataflow execution;
  Status st = execution.AddInput(core::kDatasetBdm,
                                 core::Dataset(std::move(*bdm)));
  if (st.ok()) {
    st = execution.AddInput(core::kDatasetAnnotated,
                            core::Dataset(std::move(*annotated)));
  }
  if (st.ok()) {
    st = execution.AddInput(
        core::kDatasetPlan,
        core::Dataset(std::make_shared<const lb::MatchPlan>(
            rec->chosen_plan())));
  }
  if (!st.ok()) return Fail(st);
  execution.Emplace<core::MatchStage>("match", core::kDatasetPlan,
                                      core::kDatasetAnnotated,
                                      core::kDatasetBdm,
                                      core::kDatasetMatches, &matcher);
  execution.Emplace<core::ClusterStage>("cluster", core::kDatasetMatches,
                                        core::kDatasetClusters);
  auto report = execution.Run();
  if (!report.ok()) return Fail(report.status());
  return Report(execution, *report, input, output);
}

}  // namespace

int main(int argc, char** argv) {
  std::string input = argc > 1 ? argv[1] : "/tmp/erlb_demo_products.csv";
  std::string output = argc > 2 ? argv[2] : "/tmp/erlb_demo_matches.csv";
  bool auto_strategy = false;
  lb::StrategyKind strategy = lb::StrategyKind::kBlockSplit;
  if (argc > 3) {
    if (std::string(argv[3]) == "auto") {
      auto_strategy = true;
    } else {
      auto parsed = lb::StrategyKindFromName(argv[3]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      strategy = *parsed;
    }
  }

  if (argc <= 1) {
    // No input given: generate a demo catalog.
    gen::ProductConfig cfg;
    cfg.num_entities = 5000;
    cfg.duplicate_fraction = 0.25;
    auto demo = gen::GenerateProducts(cfg);
    if (!demo.ok()) return 1;
    if (auto st = er::SaveEntitiesToCsv(input, *demo); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote demo input: %s\n", input.c_str());
  }

  er::CsvSchema schema;
  schema.id_column = 0;
  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  return auto_strategy
             ? RunAuto(input, output, schema, blocking, matcher)
             : RunFixed(strategy, input, output, schema, blocking,
                        matcher);
}
