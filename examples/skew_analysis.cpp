// Skew analysis: inspect a dataset's block distribution (the BDM), see
// how each strategy would distribute the workload over reduce tasks, and
// project execution on a simulated cluster — the workflow a practitioner
// would use to pick a strategy before paying for cluster time.
//
//   $ ./skew_analysis [skew]
#include <cstdio>
#include <cstdlib>

#include "bdm/bdm.h"
#include "common/string_util.h"
#include "core/table.h"
#include "er/blocking.h"
#include "gen/skew_gen.h"
#include "lb/strategy.h"
#include "sim/er_sim.h"
#include "sim/recommend.h"

using namespace erlb;

int main(int argc, char** argv) {
  double skew = argc > 1 ? std::strtod(argv[1], nullptr) : 0.8;

  gen::SkewConfig gen_cfg;
  gen_cfg.num_entities = 50000;
  gen_cfg.num_blocks = 100;
  gen_cfg.skew = skew;
  auto entities = gen::GenerateSkewed(gen_cfg);
  if (!entities.ok()) return 1;

  const uint32_t m = 20, r = 100, nodes = 10;
  er::AttributeBlocking blocking(gen::kSkewBlockField);

  // Build the BDM the way Job 1 would see the data.
  std::vector<std::vector<std::string>> keys(m);
  for (size_t i = 0; i < entities->size(); ++i) {
    keys[i * m / entities->size()].push_back(
        blocking.Key((*entities)[i]));
  }
  auto bdm = bdm::Bdm::FromKeys(keys);
  if (!bdm.ok()) return 1;

  std::printf("skew s=%.2f: %u blocks, %s entities, %s pairs\n",
              skew, bdm->num_blocks(),
              FormatWithCommas(bdm->TotalEntities()).c_str(),
              FormatWithCommas(bdm->TotalPairs()).c_str());
  std::printf("largest 5 blocks (entities / share of all pairs):\n");
  for (int i = 0; i < 5 && i < static_cast<int>(bdm->num_blocks()); ++i) {
    std::printf("  %s: %s entities, %.1f%% of pairs\n",
                bdm->BlockKey(i).c_str(),
                FormatWithCommas(bdm->Size(i)).c_str(),
                100.0 * bdm->PairsInBlock(i) / bdm->TotalPairs());
  }

  std::printf("\nworkload distribution over r=%u reduce tasks:\n", r);
  core::TextTable table;
  table.SetHeader({"strategy", "max pairs/task", "mean pairs/task",
                   "imbalance", "map KV pairs", "sim total s"});
  for (auto kind : lb::AllStrategies()) {
    lb::MatchJobOptions options;
    options.num_reduce_tasks = r;
    auto plan = lb::MakeStrategy(kind)->Plan(*bdm, options);
    if (!plan.ok()) return 1;
    sim::ClusterConfig cluster;
    cluster.num_nodes = nodes;
    sim::CostModel cost;
    auto projected = sim::SimulateEr(kind, *bdm, r, cluster, cost);
    if (!projected.ok()) return 1;
    double mean =
        static_cast<double>(plan->total_comparisons) / r;
    table.AddRow({lb::StrategyName(kind),
                  FormatWithCommas(plan->MaxReduceComparisons()),
                  FormatWithCommas(static_cast<uint64_t>(mean)),
                  FormatDouble(plan->ReduceImbalance(), 2) + "x",
                  FormatWithCommas(plan->TotalMapOutputPairs()),
                  FormatDouble(projected->total_s, 1)});
  }
  table.Print();
  std::printf("\nimbalance = max/mean comparisons per reduce task; the\n"
              "simulated times project a %u-node cluster (2 map + 2 "
              "reduce slots per node).\n", nodes);

  sim::ClusterConfig cluster;
  cluster.num_nodes = nodes;
  sim::CostModel cost;
  auto rec = sim::RecommendStrategy(*bdm, r, cluster, cost);
  if (rec.ok()) {
    std::printf("\nrecommendation: %s\n", rec->rationale.c_str());
  }
  return 0;
}
