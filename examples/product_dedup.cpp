// Product catalog deduplication at DS1-like scale: runs all three
// strategies over a skewed synthetic product dataset, verifies they agree,
// and reports workload distribution, match quality against the generator's
// ground truth, and wall-clock times.
//
//   $ ./product_dedup [num_entities]
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "core/table.h"
#include "common/string_util.h"
#include "er/blocking.h"
#include "er/evaluation.h"
#include "er/matcher.h"
#include "gen/dataset_stats.h"
#include "gen/product_gen.h"

using namespace erlb;

int main(int argc, char** argv) {
  uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12000;

  gen::ProductConfig gen_cfg;
  gen_cfg.num_entities = n;
  gen_cfg.duplicate_fraction = 0.2;
  auto entities = gen::GenerateProducts(gen_cfg);
  if (!entities.ok()) {
    std::fprintf(stderr, "%s\n", entities.status().ToString().c_str());
    return 1;
  }

  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);

  auto stats = gen::ComputeDatasetStats(*entities, blocking);
  std::printf("dataset: %s entities, %u blocks, largest block %.1f%% of "
              "entities / %.1f%% of pairs, %s candidate pairs\n\n",
              FormatWithCommas(entities->size()).c_str(),
              stats->num_blocks, stats->largest_block_entity_share * 100,
              stats->largest_block_pair_share * 100,
              FormatWithCommas(stats->total_pairs).c_str());

  core::TextTable table;
  table.SetHeader({"strategy", "matches", "comparisons", "map KV pairs",
                   "precision", "recall", "F1", "wall s"});
  er::MatchResult previous;
  bool first = true;
  for (auto kind : lb::AllStrategies()) {
    core::ErPipelineConfig cfg;
    cfg.strategy = kind;
    cfg.num_map_tasks = 8;
    cfg.num_reduce_tasks = 32;
    core::ErPipeline pipeline(cfg);
    auto result = pipeline.Deduplicate(*entities, blocking, matcher);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", lb::StrategyName(kind),
                   result.status().ToString().c_str());
      return 1;
    }
    auto quality = er::EvaluateMatches(*entities, result->matches);
    table.AddRow(
        {lb::StrategyName(kind), FormatWithCommas(result->matches.size()),
         FormatWithCommas(result->comparisons),
         FormatWithCommas(result->match_metrics.TotalMapOutputPairs()),
         FormatDouble(quality.Precision(), 3),
         FormatDouble(quality.Recall(), 3), FormatDouble(quality.F1(), 3),
         FormatDouble(result->total_seconds, 2)});
    if (!first && !result->matches.SameAs(previous)) {
      std::fprintf(stderr, "ERROR: strategies disagree!\n");
      return 1;
    }
    previous = std::move(result->matches);
    first = false;
  }
  table.Print();
  std::printf("\nAll strategies produce the identical match result; they "
              "differ only in\nhow the comparison workload is distributed "
              "over reduce tasks.\n");
  return 0;
}
