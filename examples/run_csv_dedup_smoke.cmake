# Hermetic end-to-end smoke run for csv_dedup: write a small catalog
# with near-duplicate rows into WORK_DIR, dedup it, and check that the
# matches CSV comes back. No shared /tmp state, so concurrent ctest
# runs (e.g. release and asan trees) cannot race.
file(MAKE_DIRECTORY ${WORK_DIR})
set(input ${WORK_DIR}/products.csv)
set(output ${WORK_DIR}/matches.csv)

file(WRITE ${input}
"id,name
1,apple iphone 12 64gb black
2,apple iphone 12 64 gb black
3,samsung galaxy s21 128gb
4,samsung galaxy s21 128 gb
5,logitech mx master 3 mouse
6,dell ultrasharp u2720q monitor
")

execute_process(COMMAND ${EXE} ${input} ${output} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "csv_dedup exited with ${rc}")
endif()
if(NOT EXISTS ${output})
  message(FATAL_ERROR "csv_dedup did not write ${output}")
endif()
file(READ ${output} matches)
if(NOT matches MATCHES "[0-9]")
  message(FATAL_ERROR "csv_dedup found no matches in a catalog with near-duplicates: ${matches}")
endif()

# Auto mode: analysis graph -> recommender -> execution graph. Must find
# the same duplicates.
set(auto_output ${WORK_DIR}/matches_auto.csv)
execute_process(COMMAND ${EXE} ${input} ${auto_output} auto
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "csv_dedup auto exited with ${rc}")
endif()
file(READ ${auto_output} auto_matches)
if(NOT auto_matches STREQUAL matches)
  message(FATAL_ERROR "csv_dedup auto mode found different matches:\n${auto_matches}\nvs\n${matches}")
endif()
