// Record linkage between two sources (Appendix I): link a clean product
// catalog R against a noisy offer feed S, including entities without a
// valid blocking key via the appendix's decomposition
//   match_B(R,S) = match_B(R−R∅, S−S∅) ∪ match_⊥(R, S∅)
//                  ∪ match_⊥(R∅, S−S∅).
//
//   $ ./two_source_linkage
#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "core/pipeline.h"
#include "er/blocking.h"
#include "er/matcher.h"
#include "gen/perturb.h"
#include "gen/product_gen.h"

using namespace erlb;

int main() {
  // R: catalog of 3000 products.
  gen::ProductConfig cfg_r;
  cfg_r.num_entities = 3000;
  cfg_r.duplicate_fraction = 0.0;  // catalog is clean
  cfg_r.seed = 51;
  auto catalog = gen::GenerateProducts(cfg_r);
  if (!catalog.ok()) return 1;

  // S: offer feed — perturbed copies of catalog titles plus unrelated
  // offers; a few offers have an unusable (empty) title.
  Pcg32 rng(77);
  std::vector<er::Entity> offers;
  uint64_t next_id = 1000000;
  for (const auto& product : *catalog) {
    if (rng.NextDouble() < 0.4) {
      er::Entity offer;
      offer.id = next_id++;
      offer.fields = {gen::Perturb(product.title(), 2, 3, &rng)};
      offers.push_back(std::move(offer));
    }
  }
  for (int i = 0; i < 25; ++i) {  // offers without a blocking key
    er::Entity offer;
    offer.id = next_id++;
    offer.fields = {""};
    offers.push_back(std::move(offer));
  }
  std::printf("catalog R: %zu products; offer feed S: %zu offers "
              "(25 without usable title)\n\n",
              catalog->size(), offers.size());

  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);

  for (auto kind :
       {lb::StrategyKind::kBlockSplit, lb::StrategyKind::kPairRange}) {
    core::ErPipelineConfig cfg;
    cfg.strategy = kind;
    cfg.num_map_tasks = 6;
    cfg.num_reduce_tasks = 12;
    core::ErPipeline pipeline(cfg);

    // Plain linkage ignores S entities without a key...
    auto plain = pipeline.Link(*catalog, offers, blocking, matcher);
    if (!plain.ok()) {
      // ...and fails under the default missing-key policy, as it should:
      std::printf("%s, plain Link(): %s\n", lb::StrategyName(kind),
                  plain.status().ToString().c_str());
    }

    // The appendix decomposition handles them via the constant key ⊥.
    auto full = core::LinkWithMissingKeys(pipeline, *catalog, offers,
                                          blocking, matcher);
    if (!full.ok()) {
      std::fprintf(stderr, "%s\n", full.status().ToString().c_str());
      return 1;
    }
    std::printf("%s with missing-key decomposition: %s linked pairs\n\n",
                lb::StrategyName(kind),
                FormatWithCommas(full->size()).c_str());
  }
  return 0;
}
