// erlb_serve: the long-lived ER service — daemon and client CLI in one
// binary (PR 10). The daemon holds a product corpus resident (entities +
// CSR BDM + plan cache) and answers probe-linkage and admin requests
// over a Unix domain socket; the client subcommands speak the
// serve/protocol.h frames to a running daemon.
//
//   $ ./erlb_serve serve <socket> [corpus_size]   # prints "LISTENING <socket>"
//   $ ./erlb_serve probe <socket> <title>...
//   $ ./erlb_serve insert <socket> <id> <title>
//   $ ./erlb_serve remove <socket> <id>...
//   $ ./erlb_serve stats <socket>
//   $ ./erlb_serve flush <socket>
//   $ ./erlb_serve shutdown <socket>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "er/blocking.h"
#include "er/matcher.h"
#include "gen/product_gen.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"

using namespace erlb;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: erlb_serve serve <socket> [corpus_size]\n"
      "       erlb_serve probe <socket> <title>...\n"
      "       erlb_serve insert <socket> <id> <title>\n"
      "       erlb_serve remove <socket> <id>...\n"
      "       erlb_serve stats|flush|shutdown <socket>\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "erlb_serve: %s\n", status.ToString().c_str());
  return 1;
}

int RunDaemon(const std::string& socket_path, uint64_t corpus_size) {
  static er::PrefixBlocking blocking(0, 3);
  static er::EditDistanceMatcher matcher(0.8);

  serve::SessionOptions session_options;
  serve::ServeSession session(&blocking, &matcher, session_options);

  gen::ProductConfig cfg;
  cfg.num_entities = corpus_size;
  cfg.duplicate_fraction = 0.0;
  cfg.seed = 51;
  auto corpus = gen::GenerateProducts(cfg);
  if (!corpus.ok()) return Fail(corpus.status());
  if (Status seeded = session.Insert(*corpus); !seeded.ok()) {
    return Fail(seeded);
  }

  serve::ServerOptions server_options;
  server_options.socket_path = socket_path;
  serve::Server server(&session, server_options);
  if (Status started = server.Start(); !started.ok()) {
    return Fail(started);
  }
  std::printf("LISTENING %s\n", socket_path.c_str());
  std::printf("corpus: %llu entities\n",
              static_cast<unsigned long long>(corpus->size()));
  std::fflush(stdout);
  server.WaitForShutdown();
  server.Stop();
  std::printf("daemon exiting\n");
  return 0;
}

/// Sends one request frame and prints the response; shared by every
/// client subcommand.
int RunClient(const std::string& socket_path, proc::FrameType type,
              const std::string& payload) {
  auto fd = serve::Server::Connect(socket_path);
  if (!fd.ok()) return Fail(fd.status());
  proc::FrameParser parser;
  auto response = serve::RoundTrip(*fd, &parser, type, payload);
  static_cast<void>(::close(*fd));
  if (!response.ok()) return Fail(response.status());

  switch (response->type) {
    case proc::FrameType::kServeResult: {
      auto matches = serve::DecodeMatches(response->payload);
      if (!matches.ok()) return Fail(matches.status());
      std::printf("pairs=%zu\n", matches->size());
      for (const auto& pair : matches->pairs()) {
        std::printf("%llu,%llu\n",
                    static_cast<unsigned long long>(pair.first),
                    static_cast<unsigned long long>(pair.second));
      }
      return 0;
    }
    case proc::FrameType::kServeAck: {
      if (response->payload.empty()) {
        std::printf("ok\n");
        return 0;
      }
      auto stats = serve::DecodeStats(response->payload);
      if (!stats.ok()) return Fail(stats.status());
      std::printf("corpus_entities=%llu\n"
                  "corpus_blocks=%llu\n"
                  "probes_served=%llu\n"
                  "batches_run=%llu\n"
                  "probes_skipped=%llu\n"
                  "inserts=%llu\n"
                  "removes=%llu\n"
                  "plan_cache_hits=%llu\n"
                  "plan_cache_misses=%llu\n"
                  "plan_cache_evictions=%llu\n"
                  "plan_cache_invalidations=%llu\n"
                  "plan_cache_entries=%llu\n",
                  static_cast<unsigned long long>(stats->corpus_entities),
                  static_cast<unsigned long long>(stats->corpus_blocks),
                  static_cast<unsigned long long>(stats->probes_served),
                  static_cast<unsigned long long>(stats->batches_run),
                  static_cast<unsigned long long>(stats->probes_skipped),
                  static_cast<unsigned long long>(stats->inserts),
                  static_cast<unsigned long long>(stats->removes),
                  static_cast<unsigned long long>(stats->plan_cache.hits),
                  static_cast<unsigned long long>(stats->plan_cache.misses),
                  static_cast<unsigned long long>(
                      stats->plan_cache.evictions),
                  static_cast<unsigned long long>(
                      stats->plan_cache.invalidations),
                  static_cast<unsigned long long>(
                      stats->plan_cache.entries));
      return 0;
    }
    default:
      return Fail(Status::InvalidArgument(
          "unexpected response frame type " +
          std::to_string(static_cast<int>(response->type))));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string socket_path = argv[2];

  if (command == "serve") {
    const uint64_t corpus_size =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000;
    return RunDaemon(socket_path, corpus_size);
  }
  if (command == "probe") {
    if (argc < 4) return Usage();
    // Probe ids live in a range far above the generator's corpus ids.
    std::vector<er::Entity> probes;
    for (int i = 3; i < argc; ++i) {
      er::Entity probe;
      probe.id = 900000000ull + static_cast<uint64_t>(i - 3);
      probe.fields = {argv[i]};
      probes.push_back(std::move(probe));
    }
    return RunClient(socket_path, proc::FrameType::kServeProbe,
                     serve::EncodeProbeRequest(probes));
  }
  if (command == "insert") {
    if (argc != 5) return Usage();
    er::Entity entity;
    entity.id = std::strtoull(argv[3], nullptr, 10);
    entity.fields = {argv[4]};
    return RunClient(socket_path, proc::FrameType::kServeAdmin,
                     serve::EncodeInsertRequest({entity}));
  }
  if (command == "remove") {
    if (argc < 4) return Usage();
    std::vector<uint64_t> ids;
    for (int i = 3; i < argc; ++i) {
      ids.push_back(std::strtoull(argv[i], nullptr, 10));
    }
    return RunClient(socket_path, proc::FrameType::kServeAdmin,
                     serve::EncodeRemoveRequest(ids));
  }
  if (command == "stats" || command == "flush" || command == "shutdown") {
    const auto op = command == "stats"   ? serve::AdminOp::kStats
                    : command == "flush" ? serve::AdminOp::kFlush
                                         : serve::AdminOp::kShutdown;
    return RunClient(socket_path, proc::FrameType::kServeAdmin,
                     serve::EncodeAdminRequest(op));
  }
  return Usage();
}
