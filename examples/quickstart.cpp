// Quickstart: deduplicate a small product catalog with the load-balanced
// two-job MapReduce workflow (BDM + BlockSplit).
//
//   $ ./quickstart
//
// Walks through the library's core API: entities, a blocking function, a
// matcher, the pipeline, and the match result.
#include <cstdio>

#include "core/pipeline.h"
#include "er/blocking.h"
#include "er/matcher.h"

using namespace erlb;

int main() {
  // 1. A handful of product records. fields[0] is the title.
  std::vector<er::Entity> catalog;
  auto add = [&catalog](uint64_t id, const char* title) {
    er::Entity e;
    e.id = id;
    e.fields = {title};
    catalog.push_back(std::move(e));
  };
  add(1, "canon eos 5d mark iii");
  add(2, "canon eos 5d mark 3");       // duplicate of 1
  add(3, "canon powershot sx710");
  add(4, "nikon d750 dslr body");
  add(5, "nikon d750 dslr body kit");  // duplicate of 4
  add(6, "nikon coolpix b500");
  add(7, "sony alpha 7 ii");
  add(8, "sony alpha 7ii");            // duplicate of 7
  add(9, "sony walkman nw-a45");

  // 2. Blocking: the paper's default — first three letters of the title.
  //    Only entities in the same block are compared.
  er::PrefixBlocking blocking(/*field=*/0, /*length=*/3);

  // 3. Matching: normalized edit distance >= 0.8 (the paper's matcher).
  er::EditDistanceMatcher matcher(/*threshold=*/0.8);

  // 4. Configure the MR pipeline: m map tasks, r reduce tasks, and the
  //    BlockSplit load balancing strategy (PairRange and Basic are the
  //    alternatives).
  core::ErPipeline pipeline =
      core::ErPipelineBuilder()
          .Strategy(lb::StrategyKind::kBlockSplit)
          .MapTasks(2)
          .ReduceTasks(4)
          .Build();

  // 5. Run: Job 1 computes the block distribution matrix (BDM), Job 2
  //    redistributes and matches.
  auto result = pipeline.Deduplicate(catalog, blocking, matcher);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("blocks: %u   candidate pairs compared: %lld\n",
              result->bdm.num_blocks(),
              static_cast<long long>(result->comparisons));
  std::printf("matches found: %zu\n", result->matches.size());
  for (const auto& pair : result->matches.pairs()) {
    std::printf("  %llu <-> %llu\n",
                static_cast<unsigned long long>(pair.first),
                static_cast<unsigned long long>(pair.second));
  }
  return 0;
}
