// Ablation: BlockSplit's split granularity is the number of input
// partitions m ("large blocks are split according to the m input
// partitions"). Sweeping m at fixed cluster size shows the trade-off the
// paper's Figure 11 hints at: too few partitions -> sub-blocks too coarse
// to balance; more partitions -> finer match tasks and better balance,
// at slightly more replication (each split-block entity is emitted once
// per non-empty partition).
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "core/table.h"

int main() {
  using namespace erlb;
  std::printf(
      "=== Ablation: BlockSplit split granularity (m sweep, DS1, n=10, "
      "r=100) ===\n\n");

  const uint32_t kNodes = 10, kReduceTasks = 100;
  auto cost = bench::PaperCostModel();
  auto entities = bench::MakeDs1();
  er::PrefixBlocking blocking(0, 3);
  auto strategy = lb::MakeStrategy(lb::StrategyKind::kBlockSplit);

  core::TextTable table;
  table.SetHeader(
      {"m", "imbalance", "map KV pairs", "sim s", "vs PairRange s"});
  for (uint32_t m : {2u, 5u, 10u, 20u, 40u, 80u}) {
    auto bdm = bench::BuildBdm(entities, blocking, m);
    lb::MatchJobOptions options;
    options.num_reduce_tasks = kReduceTasks;
    auto plan = strategy->Plan(bdm, options);
    ERLB_CHECK(plan.ok());
    auto split_sim = bench::Simulate(lb::StrategyKind::kBlockSplit, bdm,
                                     kReduceTasks, kNodes, cost);
    auto range_sim = bench::Simulate(lb::StrategyKind::kPairRange, bdm,
                                     kReduceTasks, kNodes, cost);
    table.AddRow({std::to_string(m),
                  bench::Fmt(plan->ReduceImbalance(), 2),
                  FormatWithCommas(plan->TotalMapOutputPairs()),
                  bench::Fmt(split_sim.total_s),
                  bench::Fmt(range_sim.total_s)});
  }
  table.Print();
  std::printf(
      "\nWith few input partitions the sub-blocks of the dominant block\n"
      "are too coarse to balance (high imbalance); more map tasks give\n"
      "BlockSplit finer match tasks, converging towards PairRange's\n"
      "balance at the cost of more replication.\n");
  return 0;
}
