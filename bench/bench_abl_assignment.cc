// Ablation: BlockSplit's greedy LPT match-task assignment ("assigns match
// tasks in descending size ... to the reduce task with the lowest number
// of already assigned pairs") vs. naive round-robin assignment. Shows why
// the paper's heuristic matters: the max reduce-task load — and therefore
// the reduce-phase makespan — degrades without it.
#include <cstdio>

#include "bench_common.h"
#include "core/table.h"

int main() {
  using namespace erlb;
  std::printf(
      "=== Ablation: BlockSplit match-task assignment (greedy LPT vs. "
      "round-robin) ===\n\n");

  const uint32_t kNodes = 10, kMapTasks = 20;
  auto cost = bench::PaperCostModel();
  auto entities = bench::MakeDs1();
  er::PrefixBlocking blocking(0, 3);
  auto bdm = bench::BuildBdm(entities, blocking, kMapTasks);
  auto strategy = lb::MakeStrategy(lb::StrategyKind::kBlockSplit);

  core::TextTable table;
  table.SetHeader({"r", "LPT imbalance", "RR imbalance", "LPT sim s",
                   "RR sim s"});
  for (uint32_t r = 20; r <= 160; r += 20) {
    lb::MatchJobOptions lpt, rr;
    lpt.num_reduce_tasks = rr.num_reduce_tasks = r;
    lpt.assignment = lb::TaskAssignment::kGreedyLpt;
    rr.assignment = lb::TaskAssignment::kRoundRobin;
    auto lpt_plan = strategy->Plan(bdm, lpt);
    auto rr_plan = strategy->Plan(bdm, rr);
    ERLB_CHECK(lpt_plan.ok());
    ERLB_CHECK(rr_plan.ok());

    sim::ClusterConfig cluster;
    cluster.num_nodes = kNodes;
    auto lpt_sim = sim::SimulateEr(lb::StrategyKind::kBlockSplit, bdm, r,
                                   cluster, cost,
                                   lb::TaskAssignment::kGreedyLpt);
    auto rr_sim = sim::SimulateEr(lb::StrategyKind::kBlockSplit, bdm, r,
                                  cluster, cost,
                                  lb::TaskAssignment::kRoundRobin);
    ERLB_CHECK(lpt_sim.ok());
    ERLB_CHECK(rr_sim.ok());
    table.AddRow({std::to_string(r),
                  bench::Fmt(lpt_plan->ReduceImbalance(), 2),
                  bench::Fmt(rr_plan->ReduceImbalance(), 2),
                  bench::Fmt(lpt_sim->total_s),
                  bench::Fmt(rr_sim->total_s)});
  }
  table.Print();
  std::printf(
      "\nImbalance = max/mean comparisons per reduce task (1.00 is "
      "perfect).\n");
  return 0;
}
