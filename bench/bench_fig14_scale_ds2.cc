// Figure 14: execution times and speedup vs. cluster size n on the large
// DS2 dataset (BlockSplit and PairRange; the paper drops Basic here).
// m = 2n, r = 10n.
//
// Expected shape (paper): both strategies scale almost linearly up to
// ~40 nodes; DS2's much larger per-task workload (avg comparisons per
// reduce task >2000x DS1's) amortizes PairRange's replication overhead,
// so PairRange stays competitive at n=100 (unlike on DS1).
#include <cstdio>

#include "bench_common.h"
#include "core/table.h"

int main() {
  using namespace erlb;
  std::printf(
      "=== Figure 14: execution times and speedup vs. nodes (DS2) ===\n");
  std::printf("m = 2n map tasks, r = 10n reduce tasks\n\n");

  auto cost = bench::PaperCostModel();
  auto entities = bench::MakeDs2();
  er::PrefixBlocking blocking(0, 3);

  const uint32_t nodes[] = {1, 2, 5, 10, 20, 40, 100};
  double base_split = 0, base_range = 0;

  core::TextTable table;
  table.SetHeader({"n", "BlockSplit s", "PairRange s", "BlockSplit spd",
                   "PairRange spd"});
  for (uint32_t n : nodes) {
    auto bdm = bench::BuildBdm(entities, blocking, 2 * n);
    double split =
        bench::Simulate(lb::StrategyKind::kBlockSplit, bdm, 10 * n, n,
                        cost)
            .total_s;
    double range =
        bench::Simulate(lb::StrategyKind::kPairRange, bdm, 10 * n, n,
                        cost)
            .total_s;
    if (n == 1) {
      base_split = split;
      base_range = range;
    }
    table.AddRow({std::to_string(n), bench::Fmt(split),
                  bench::Fmt(range), bench::Fmt(base_split / split, 1),
                  bench::Fmt(base_range / range, 1)});
  }
  table.Print();
  std::printf(
      "\nPaper: near-linear scaling up to 40 nodes; significantly better\n"
      "speedups than DS1 at large n thanks to the reasonable workload per\n"
      "reduce task; PairRange's balanced ranges outweigh its replication\n"
      "overhead on this large dataset.\n");
  return 0;
}
