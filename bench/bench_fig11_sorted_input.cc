// Figure 11: BlockSplit vs. PairRange on unsorted and title-sorted DS1.
// Sorting groups whole blocks into few input partitions, crippling
// BlockSplit's partition-based splitting; PairRange is unaffected.
//
// Expected shape (paper): sorting deteriorates BlockSplit by ~80%;
// PairRange's curves coincide.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/table.h"

int main() {
  using namespace erlb;
  std::printf(
      "=== Figure 11: execution times, unsorted vs. sorted input (DS1) "
      "===\n");
  std::printf("n=10 nodes, m=20 map tasks; input sorted by title\n\n");

  const uint32_t kNodes = 10, kMapTasks = 20;
  auto cost = bench::PaperCostModel();
  er::PrefixBlocking blocking(0, 3);

  auto unsorted = bench::MakeDs1();
  auto sorted = unsorted;
  std::sort(sorted.begin(), sorted.end(),
            [](const er::Entity& a, const er::Entity& b) {
              return a.title() < b.title();
            });

  auto bdm_unsorted = bench::BuildBdm(unsorted, blocking, kMapTasks);
  auto bdm_sorted = bench::BuildBdm(sorted, blocking, kMapTasks);

  core::TextTable table;
  table.SetHeader({"r", "BlockSplit s", "BlockSplit sorted s",
                   "PairRange s", "PairRange sorted s"});
  double worst_ratio = 0;
  for (uint32_t r = 20; r <= 160; r += 20) {
    auto bs_u = bench::Simulate(lb::StrategyKind::kBlockSplit,
                                bdm_unsorted, r, kNodes, cost);
    auto bs_s = bench::Simulate(lb::StrategyKind::kBlockSplit, bdm_sorted,
                                r, kNodes, cost);
    auto pr_u = bench::Simulate(lb::StrategyKind::kPairRange,
                                bdm_unsorted, r, kNodes, cost);
    auto pr_s = bench::Simulate(lb::StrategyKind::kPairRange, bdm_sorted,
                                r, kNodes, cost);
    worst_ratio = std::max(worst_ratio, bs_s.total_s / bs_u.total_s);
    table.AddRow({std::to_string(r), bench::Fmt(bs_u.total_s),
                  bench::Fmt(bs_s.total_s), bench::Fmt(pr_u.total_s),
                  bench::Fmt(pr_s.total_s)});
  }
  table.Print();
  std::printf(
      "\nWorst BlockSplit sorted/unsorted ratio: %.2fx\n"
      "Paper: sorted input deteriorates BlockSplit's execution time by\n"
      "~80%% (limited splitting); PairRange is insensitive to input "
      "order.\n",
      worst_ratio);
  return 0;
}
