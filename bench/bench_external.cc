// Out-of-core vs in-memory execution: throughput and peak RSS at several
// scales, reported as a BENCH_external.json document for the CI
// regression gate (tools/bench_compare.py).
//
// Every measured case runs in a freshly exec'd child process (this binary
// re-invoked with --child) so getrusage's ru_maxrss reflects exactly one
// pipeline run — the only honest way to compare peak memory between
// modes within one benchmark binary. The parent aggregates medians and
// writes:
//   * dedup_<mode>/<scale>            — wall nanos per pipeline run
//                                       (gated, lower is better)
//   * external_vs_inmem/<scale>/time_ratio — in-memory / external wall
//     time (gated as a speedup ratio; machine-relative, so it stays
//     comparable across CI hardware)
//   * external_vs_inmem/<scale>/rss_ratio — in-memory / external peak
//     RSS; > 1 demonstrates the bounded-memory claim
//   * multiproc/<scale> and multiproc_vs_inmem/<scale>/time_ratio — the
//     shared-nothing multi-process shuffle (4 forked workers), timed the
//     same way; its RSS value sums the coordinator with getrusage's
//     reaped-children figure for the worker processes
//   * .../peak_rss_kb and .../spill_mb — informational values
//
// The external cases run with ExecutionMode::kAuto and a deliberately
// tiny spill threshold, so they also prove the auto-selection path: the
// input "exceeds the spill threshold" and the engine goes out-of-core on
// its own (asserted via the spill metrics).
//
//   $ bench_external [--json out.json] [--reps N] [--scale small|full]
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/io_buffer.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "er/blocking.h"
#include "er/matcher.h"
#include "gen/skew_gen.h"
#include "mr/job.h"

using namespace erlb;

namespace {

struct CaseConfig {
  std::string label;  // e.g. "ds100k", "shuffle400k"
  /// "pipeline": end-to-end BlockSplit dedup over generated entities
  /// (num_entities/num_blocks), exercising auto spill selection.
  /// "shuffle": engine-level job over num_entities records with
  /// value_bytes-sized string values — intermediate data dominates RSS,
  /// the workload where bounded memory shows.
  std::string kind = "pipeline";
  uint64_t num_entities = 0;
  uint32_t num_blocks = 0;
  uint32_t value_bytes = 0;
};

struct CaseResult {
  double seconds = 0;
  long peak_rss_kb = 0;
  double spill_mb = 0;
  bool external = false;
  int64_t comparisons = 0;
};

/// The three execution paths under measurement. Multi-process runs the
/// same out-of-core shuffle sharded across 4 forked worker processes.
enum class Mode { kInMemory, kExternal, kMultiProcess };

const char* ModeArg(Mode mode) {
  switch (mode) {
    case Mode::kInMemory: return "in_memory";
    case Mode::kExternal: return "external";
    case Mode::kMultiProcess: return "multi_process";
  }
  return "in_memory";
}

Mode ParseMode(const char* arg) {
  if (std::strcmp(arg, "external") == 0) return Mode::kExternal;
  if (std::strcmp(arg, "multi_process") == 0) return Mode::kMultiProcess;
  return Mode::kInMemory;
}

constexpr uint32_t kWorkerProcesses = 4;

/// Peak RSS of this (measured, freshly exec'd) process plus its reaped
/// children — for multi-process runs, the coordinator's own footprint
/// summed with what getrusage reports for the waited-for worker
/// processes, giving the job's per-box memory figure.
long ProcessTreePeakRssKb() {
  struct rusage self_usage, child_usage;
  ERLB_CHECK(getrusage(RUSAGE_SELF, &self_usage) == 0);
  ERLB_CHECK(getrusage(RUSAGE_CHILDREN, &child_usage) == 0);
  return self_usage.ru_maxrss + child_usage.ru_maxrss;
}

// ---- Engine-level shuffle case ------------------------------------------

class FatValueMapper
    : public mr::Mapper<uint64_t, std::string, uint64_t, std::string> {
 public:
  void Map(const uint64_t& k, const std::string& v,
           mr::MapContext<uint64_t, std::string>* ctx) override {
    ctx->Emit(k, v);
  }
};

class CountReducer
    : public mr::Reducer<uint64_t, std::string, uint64_t, uint64_t> {
 public:
  void Reduce(std::span<const std::pair<uint64_t, std::string>> group,
              mr::ReduceContext<uint64_t, uint64_t>* ctx) override {
    uint64_t bytes = 0;
    for (const auto& [k, v] : group) bytes += v.size();
    ctx->Emit(group.front().first, bytes);
  }
};

/// Group-by-key over records with fat string values: the intermediate
/// data is the workload. The in-memory shuffle materializes every run
/// (peak ≈ input + all intermediate pairs); the external shuffle holds
/// spill buffers only.
CaseResult RunShuffleCase(const CaseConfig& config, Mode mode) {
  const uint32_t m = 8, r = 32;
  Pcg32 rng(99);
  std::vector<std::vector<std::pair<uint64_t, std::string>>> input(m);
  for (auto& part : input) {
    part.reserve(config.num_entities / m);
    for (uint64_t i = 0; i < config.num_entities / m; ++i) {
      std::string value(config.value_bytes - rng.NextBounded(32), 'x');
      part.push_back({rng.NextBounded(1u << 20), std::move(value)});
    }
  }

  mr::JobSpec<uint64_t, std::string, uint64_t, std::string, uint64_t,
              uint64_t>
      spec;
  spec.num_reduce_tasks = r;
  spec.mapper_factory = [](const mr::TaskContext&) {
    return std::make_unique<FatValueMapper>();
  };
  spec.reducer_factory = [](const mr::TaskContext&) {
    return std::make_unique<CountReducer>();
  };
  spec.partitioner = [](const uint64_t& k, uint32_t r_) {
    return static_cast<uint32_t>(k % r_);
  };
  spec.key_less = [](const uint64_t& a, const uint64_t& b) { return a < b; };
  spec.group_equal = [](const uint64_t& a, const uint64_t& b) {
    return a == b;
  };

  mr::ExecutionOptions options;
  switch (mode) {
    case Mode::kInMemory:
      options.mode = mr::ExecutionMode::kInMemory;
      break;
    case Mode::kExternal:
      options.mode = mr::ExecutionMode::kExternal;
      break;
    case Mode::kMultiProcess:
      options.mode = mr::ExecutionMode::kMultiProcess;
      options.num_worker_processes = kWorkerProcesses;
      break;
  }
  mr::JobRunner runner(4, options);

  Stopwatch watch;
  auto result = runner.Run(spec, input);
  double seconds = watch.ElapsedSeconds();
  ERLB_CHECK(result.status.ok()) << result.status.ToString();
  if (mode == Mode::kMultiProcess) {
    ERLB_CHECK(result.metrics.multi_process);
  }

  CaseResult out;
  out.seconds = seconds;
  out.peak_rss_kb = ProcessTreePeakRssKb();
  out.spill_mb = static_cast<double>(result.metrics.spill_bytes_written) /
                 (1024.0 * 1024.0);
  out.external = result.metrics.external;
  out.comparisons =
      result.metrics.counters.Get(mr::kCounterMapOutputPairs);
  return out;
}

/// One measured pipeline run; executed inside the --child process. Runs
/// the standard stage graph directly and reads everything it reports —
/// spill volume, execution path, comparisons — from the dataflow's
/// unified per-stage report.
CaseResult RunPipelineCase(const CaseConfig& config, Mode mode) {
  gen::SkewConfig gen_config;
  gen_config.num_entities = config.num_entities;
  gen_config.num_blocks = config.num_blocks;
  // |Φk| ∝ e^(−s·k): s = 3/b keeps a 20x size spread between the largest
  // and smallest block (real splitting work for BlockSplit) while the
  // average block stays ~12 entities, so comparisons scale linearly.
  gen_config.skew = 3.0 / config.num_blocks;
  gen_config.duplicate_fraction = 0.15;
  gen_config.seed = 4242;
  auto entities = gen::GenerateSkewed(gen_config);
  ERLB_CHECK(entities.ok()) << entities.status().ToString();

  core::ErPipelineConfig pipeline_config;
  pipeline_config.strategy = lb::StrategyKind::kBlockSplit;
  pipeline_config.num_map_tasks = 8;
  pipeline_config.num_reduce_tasks = 32;
  switch (mode) {
    case Mode::kExternal:
      // kAuto + tiny threshold: the engine must decide to spill on its
      // own.
      pipeline_config.execution.mode = mr::ExecutionMode::kAuto;
      pipeline_config.execution.spill_threshold_bytes = uint64_t{1} << 20;
      break;
    case Mode::kInMemory:
      pipeline_config.execution.mode = mr::ExecutionMode::kInMemory;
      break;
    case Mode::kMultiProcess:
      pipeline_config.execution.mode = mr::ExecutionMode::kMultiProcess;
      pipeline_config.execution.num_worker_processes = kWorkerProcesses;
      break;
  }

  er::AttributeBlocking blocking(gen::kSkewBlockField);
  er::JaroWinklerMatcher matcher(0.9, gen::kSkewTitleField);

  Stopwatch watch;
  auto df = core::BuildStandardDataflow(pipeline_config, blocking, matcher);
  ERLB_CHECK(df.ok()) << df.status().ToString();
  core::PartitionedEntities input;
  input.partitions =
      er::SplitIntoPartitions(*entities, pipeline_config.num_map_tasks);
  ERLB_CHECK(df->AddInput(core::kDatasetPartitions,
                          core::Dataset(std::move(input)))
                 .ok());
  auto report = df->Run();
  double seconds = watch.ElapsedSeconds();
  ERLB_CHECK(report.ok()) << report.status().ToString();

  const core::StageReport* match = report->Find("match");
  ERLB_CHECK(match != nullptr && match->job.has_value());
  if (mode == Mode::kExternal) {
    ERLB_CHECK(match->job->external)
        << "auto mode failed to select the external path";
  }
  if (mode == Mode::kMultiProcess) {
    ERLB_CHECK(match->job->multi_process);
  }

  CaseResult out;
  out.seconds = seconds;
  out.peak_rss_kb = ProcessTreePeakRssKb();
  out.spill_mb =
      static_cast<double>(report->TotalSpillBytes()) / (1024.0 * 1024.0);
  out.external = match->job->external;
  out.comparisons = report->TotalComparisons();
  return out;
}

CaseResult RunCase(const CaseConfig& config, Mode mode) {
  return config.kind == "shuffle" ? RunShuffleCase(config, mode)
                                  : RunPipelineCase(config, mode);
}

int ChildMain(const CaseConfig& config, Mode mode,
              const std::string& out_path) {
  CaseResult r = RunCase(config, mode);
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) return 1;
  std::fprintf(f,
               "{\"seconds\": %.6f, \"peak_rss_kb\": %ld, \"spill_mb\": "
               "%.3f, \"external\": %s, \"comparisons\": %lld}\n",
               r.seconds, r.peak_rss_kb, r.spill_mb,
               r.external ? "true" : "false",
               static_cast<long long>(r.comparisons));
  std::fclose(f);
  return 0;
}

std::string SelfExe() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  ERLB_CHECK(n > 0);
  buf[n] = '\0';
  return buf;
}

/// Reads and parses one small JSON file (the child's report).
Json ReadJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  ERLB_CHECK(f != nullptr) << "missing child report " << path;
  std::string text;
  char buf[512];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  auto doc = Json::Parse(text);
  ERLB_CHECK(doc.ok()) << doc.status().ToString();
  return std::move(doc).ValueOrDie();
}

/// Spawns one child run and parses its result file.
CaseResult SpawnCase(const CaseConfig& config, Mode mode,
                     const std::string& tmp_dir) {
  std::string out_path = tmp_dir + "/case.json";
  pid_t pid = ::fork();
  ERLB_CHECK(pid >= 0) << "fork failed";
  if (pid == 0) {
    std::string exe = SelfExe();
    std::string n = std::to_string(config.num_entities);
    std::string b = std::to_string(config.num_blocks);
    std::string vb = std::to_string(config.value_bytes);
    ::execl(exe.c_str(), exe.c_str(), "--child", config.label.c_str(),
            config.kind.c_str(), n.c_str(), b.c_str(), vb.c_str(),
            ModeArg(mode), out_path.c_str(),
            static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }
  int status = 0;
  ERLB_CHECK(::waitpid(pid, &status, 0) == pid);
  ERLB_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child run failed for " << config.label;

  Json doc = ReadJsonFile(out_path);
  CaseResult r;
  r.seconds = doc.Find("seconds")->AsDouble();
  r.peak_rss_kb = static_cast<long>(doc.Find("peak_rss_kb")->AsInt64());
  r.spill_mb = doc.Find("spill_mb")->AsDouble();
  r.external = doc.Find("external")->AsBool();
  r.comparisons = doc.Find("comparisons")->AsInt64();
  return r;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct Entry {
  std::string name;
  // Exactly one of these is set.
  double nanos_per_op = -1;  // gated: lower is better
  double speedup = -1;       // gated: higher is better
  double value = -1;         // informational
  std::string baseline, contender;
  int64_t iterations = 0;
};

void WriteJson(const std::string& path, const std::vector<Entry>& entries,
               int reps) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ERLB_CHECK(f != nullptr) << "cannot write " << path;
  std::fprintf(f, "{\n  \"bench\": \"bench_external\",\n");
  std::fprintf(f, "  \"unit\": \"ns/op\",\n  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (e.nanos_per_op >= 0) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"nanos_per_op\": %.1f, "
                   "\"iterations\": %lld}",
                   e.name.c_str(), e.nanos_per_op,
                   static_cast<long long>(e.iterations));
    } else if (e.speedup >= 0) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"speedup\": %.3f, "
                   "\"baseline\": \"%s\", \"contender\": \"%s\"}",
                   e.name.c_str(), e.speedup, e.baseline.c_str(),
                   e.contender.c_str());
    } else {
      std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.1f}",
                   e.name.c_str(), e.value);
    }
    std::fprintf(f, "%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Child protocol:
  // --child <label> <kind> <entities> <blocks> <value_bytes> <mode> <out>.
  if (argc >= 2 && std::strcmp(argv[1], "--child") == 0) {
    ERLB_CHECK(argc == 9);
    CaseConfig config;
    config.label = argv[2];
    config.kind = argv[3];
    config.num_entities = std::strtoull(argv[4], nullptr, 10);
    config.num_blocks = static_cast<uint32_t>(std::atoi(argv[5]));
    config.value_bytes = static_cast<uint32_t>(std::atoi(argv[6]));
    return ChildMain(config, ParseMode(argv[7]), argv[8]);
  }

  std::string json_path;
  int reps = 3;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--scale" && i + 1 < argc) {
      small = std::string(argv[++i]) == "small";
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--reps N] "
                   "[--scale small|full]\n",
                   argv[0]);
      return 1;
    }
  }

  std::vector<CaseConfig> cases;
  auto add_case = [&cases](const char* label, const char* kind, uint64_t n,
                           uint32_t blocks, uint32_t value_bytes) {
    CaseConfig c;
    c.label = label;
    c.kind = kind;
    c.num_entities = n;
    c.num_blocks = blocks;
    c.value_bytes = value_bytes;
    cases.push_back(std::move(c));
  };
  if (small) {
    add_case("ds30k", "pipeline", 30000, 2500, 0);
    add_case("shuffle100k", "shuffle", 100000, 0, 160);
  } else {
    add_case("ds100k", "pipeline", 100000, 8000, 0);
    add_case("ds250k", "pipeline", 250000, 20000, 0);
    add_case("shuffle400k", "shuffle", 400000, 0, 160);
    add_case("shuffle800k", "shuffle", 800000, 0, 160);
  }

  auto tmp = ScopedTempDir::Make();
  ERLB_CHECK(tmp.ok()) << tmp.status().ToString();

  std::vector<Entry> entries;
  for (const auto& config : cases) {
    std::vector<double> mem_secs, ext_secs, mp_secs;
    std::vector<double> mem_rss, ext_rss, mp_rss;
    double spill_mb = 0;
    for (int rep = 0; rep < reps; ++rep) {
      CaseResult mem = SpawnCase(config, Mode::kInMemory, tmp->path());
      CaseResult ext = SpawnCase(config, Mode::kExternal, tmp->path());
      CaseResult mp = SpawnCase(config, Mode::kMultiProcess, tmp->path());
      ERLB_CHECK(!mem.external);
      ERLB_CHECK(ext.external);
      ERLB_CHECK(mp.external);
      ERLB_CHECK(mem.comparisons == ext.comparisons)
          << "modes diverged: " << mem.comparisons << " vs "
          << ext.comparisons;
      ERLB_CHECK(mem.comparisons == mp.comparisons)
          << "multi-process diverged: " << mem.comparisons << " vs "
          << mp.comparisons;
      mem_secs.push_back(mem.seconds);
      ext_secs.push_back(ext.seconds);
      mp_secs.push_back(mp.seconds);
      mem_rss.push_back(static_cast<double>(mem.peak_rss_kb));
      ext_rss.push_back(static_cast<double>(ext.peak_rss_kb));
      mp_rss.push_back(static_cast<double>(mp.peak_rss_kb));
      spill_mb = ext.spill_mb;
    }
    double mem_sec = Median(mem_secs), ext_sec = Median(ext_secs);
    double mp_sec = Median(mp_secs);
    double mem_kb = Median(mem_rss), ext_kb = Median(ext_rss);
    double mp_kb = Median(mp_rss);

    std::printf(
        "%-8s in-memory %.2fs / %.0f MB rss   external %.2fs / %.0f MB "
        "rss   multiproc(%u) %.2fs / %.0f MB rss   (spilled %.1f MB)\n",
        config.label.c_str(), mem_sec, mem_kb / 1024.0, ext_sec,
        ext_kb / 1024.0, kWorkerProcesses, mp_sec, mp_kb / 1024.0,
        spill_mb);

    std::string mem_name = "inmem/" + config.label;
    std::string ext_name = "external/" + config.label;
    std::string mp_name = "multiproc/" + config.label;
    auto add_time = [&](const std::string& name, double seconds) {
      Entry e;
      e.name = name;
      e.nanos_per_op = seconds * 1e9;
      e.iterations = reps;
      entries.push_back(std::move(e));
    };
    auto add_ratio = [&](const std::string& name, double ratio) {
      Entry e;
      e.name = name;
      e.speedup = ratio;
      e.baseline = mem_name;
      e.contender = ext_name;
      entries.push_back(std::move(e));
    };
    auto add_value = [&](const std::string& name, double value) {
      Entry e;
      e.name = name;
      e.value = value;
      entries.push_back(std::move(e));
    };
    add_time(mem_name, mem_sec);
    add_time(ext_name, ext_sec);
    add_time(mp_name, mp_sec);
    add_ratio("external_vs_inmem/" + config.label + "/time_ratio",
              mem_sec / ext_sec);
    add_ratio("external_vs_inmem/" + config.label + "/rss_ratio",
              mem_kb / ext_kb);
    // Same-run ratio for the sharded mode too: a collapse here means
    // the fork/shuffle-dir machinery got dramatically slower relative
    // to the single-process in-memory path on the same hardware.
    {
      Entry e;
      e.name = "multiproc_vs_inmem/" + config.label + "/time_ratio";
      e.speedup = mem_sec / mp_sec;
      e.baseline = mem_name;
      e.contender = mp_name;
      entries.push_back(std::move(e));
    }
    add_value(mem_name + "/peak_rss_kb", mem_kb);
    add_value(ext_name + "/peak_rss_kb", ext_kb);
    add_value(mp_name + "/peak_rss_kb", mp_kb);
    add_value(ext_name + "/spill_mb", spill_mb);
  }

  if (!json_path.empty()) WriteJson(json_path, entries, reps);
  return 0;
}
