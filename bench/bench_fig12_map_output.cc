// Figure 12: number of key-value pairs emitted by the map phase of the
// matching job vs. r, for all three strategies on DS1. Exact counts from
// the plan (no cost model involved).
//
// Expected shape (paper): Basic is constant (= input size, no
// replication); BlockSplit is a step function that flattens out (already-
// split blocks don't grow with r); PairRange grows almost linearly with r
// and overtakes BlockSplit for large r.
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "core/table.h"

int main() {
  using namespace erlb;
  std::printf(
      "=== Figure 12: map output key-value pairs vs. r (DS1, m=20) ===\n\n");

  const uint32_t kMapTasks = 20;
  auto entities = bench::MakeDs1();
  er::PrefixBlocking blocking(0, 3);
  auto bdm = bench::BuildBdm(entities, blocking, kMapTasks);

  core::TextTable table;
  table.SetHeader({"r", "Basic", "BlockSplit", "PairRange"});
  lb::MatchJobOptions options;
  for (uint32_t r = 20; r <= 640; r *= 2) {
    options.num_reduce_tasks = r;
    std::vector<std::string> row{std::to_string(r)};
    for (auto kind : lb::AllStrategies()) {
      auto plan = lb::MakeStrategy(kind)->Plan(bdm, options);
      if (!plan.ok()) {
        std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
        return 1;
      }
      row.push_back(FormatWithCommas(plan->TotalMapOutputPairs()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nInput entities: %s\n"
      "Paper: Basic == input size for every r; BlockSplit grows step-wise\n"
      "and saturates; PairRange grows ~linearly with r and emits the most\n"
      "for large r.\n",
      FormatWithCommas(entities.size()).c_str());
  return 0;
}
