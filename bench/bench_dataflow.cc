// Dataflow-adapter overhead micro benchmark: ErPipeline now builds and
// runs the standard stage graph (core/dataflow.h), so this bench pins
// the cost of that indirection — graph construction alone, and the full
// adapter run against the same jobs invoked directly (RunBdmJob +
// BuildPlan + ExecutePlan on one runner, the pre-dataflow pipeline
// body). The `overhead/direct_vs_adapter` ratio must stay ~1x; it is
// gated by tools/bench_compare.py against the committed
// BENCH_dataflow.json baseline.
//
//   $ ./bench_dataflow [--json <path>] [--reps N] [--min-rep-ms N]
#include <string>
#include <vector>

#include "bdm/bdm_job.h"
#include "bench_json.h"
#include "common/logging.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "er/blocking.h"
#include "er/matcher.h"
#include "gen/skew_gen.h"
#include "lb/strategy.h"
#include "mr/job.h"

using namespace erlb;

int main(int argc, char** argv) {
  bench::MicroBench harness("bench_dataflow");
  if (!harness.ParseArgs(argc, argv)) return 1;

  gen::SkewConfig gen_config;
  gen_config.num_entities = 1500;
  gen_config.num_blocks = 60;
  // Mild skew (20x largest/smallest block): enough splitting work for
  // BlockSplit while one run stays in the tens of milliseconds — the
  // adapter overhead being measured is per-run, not per-comparison.
  gen_config.skew = 3.0 / gen_config.num_blocks;
  gen_config.duplicate_fraction = 0.2;
  gen_config.seed = 7;
  auto entities = gen::GenerateSkewed(gen_config);
  ERLB_CHECK(entities.ok());

  const uint32_t m = 4, r = 16, workers = 4;
  er::Partitions parts = er::SplitIntoPartitions(*entities, m);
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  er::JaroWinklerMatcher matcher(0.85, gen::kSkewTitleField);

  core::ErPipelineConfig config;
  config.strategy = lb::StrategyKind::kBlockSplit;
  config.num_map_tasks = m;
  config.num_reduce_tasks = r;
  config.num_workers = workers;
  core::ErPipeline pipeline(config);

  // The pre-dataflow pipeline body: both jobs on one directly-owned
  // runner, no graph, no report.
  harness.Run("run/direct_jobs", [&] {
    mr::JobRunner runner(workers, config.execution);
    bdm::BdmJobOptions bdm_options;
    bdm_options.num_reduce_tasks = r;
    auto bdm_out = bdm::RunBdmJob(parts, blocking, bdm_options, runner);
    ERLB_CHECK(bdm_out.ok());
    auto strategy = lb::MakeStrategy(config.strategy);
    lb::MatchJobOptions match_options;
    match_options.num_reduce_tasks = r;
    auto plan = strategy->BuildPlan(bdm_out->bdm, match_options);
    ERLB_CHECK(plan.ok());
    auto out = strategy->ExecutePlan(*plan, *bdm_out->annotated,
                                     bdm_out->bdm, matcher, runner);
    ERLB_CHECK(out.ok());
    ERLB_CHECK(out->matches.size() > 0);
  });

  // The adapter: same jobs, reached through graph build + validate +
  // run + report assembly.
  harness.Run("run/pipeline_adapter", [&] {
    auto result = pipeline.DeduplicatePartitioned(parts, blocking, matcher);
    ERLB_CHECK(result.ok());
    ERLB_CHECK(result->matches.size() > 0);
  });

  // direct / adapter; ~1.0 means the graph machinery is free at job
  // granularity. Gated (higher is better, so a regression = adapter
  // getting relatively slower).
  harness.Speedup("overhead/direct_vs_adapter", "run/direct_jobs",
                  "run/pipeline_adapter");

  // Graph construction alone (no execution): stage allocation, dataset
  // wiring, DAG validation, input binding.
  harness.Run("build/standard_graph", [&] {
    auto df = core::BuildStandardDataflow(config, blocking, matcher);
    ERLB_CHECK(df.ok());
    core::PartitionedEntities input;
    input.partitions = parts;
    core::Dataset dataset(std::move(input));
    Status bound =
        df->AddInput(core::kDatasetPartitions, std::move(dataset));
    ERLB_CHECK(bound.ok());
    ERLB_CHECK(df->Validate().ok());
  });

  return harness.Finish();
}
