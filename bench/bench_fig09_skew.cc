// Figure 9: robustness against data skew. Block sizes follow e^(-s*k)
// over b=100 blocks; n=10 nodes, m=20 map tasks, r=100 reduce tasks. The
// series is the average execution time per 10^4 pairs for Basic,
// BlockSplit and PairRange as the skew factor s grows from 0 to 1.
//
// Expected shape (paper): Basic degrades by an order of magnitude with
// rising skew (225 ms/10^4 pairs at s=1, >12x slower than the balanced
// strategies); Basic is fastest at s=0 (no BDM job); BlockSplit and
// PairRange stay flat with a small PairRange edge.
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "core/table.h"
#include "gen/skew_gen.h"

int main() {
  using namespace erlb;
  std::printf("=== Figure 9: execution times for different data skews ===\n");
  std::printf("n=10 nodes, m=20, r=100, b=100 blocks, |block_k| ~ e^(-s*k)\n\n");

  const uint32_t kNodes = 10, kMapTasks = 20, kReduceTasks = 100;
  auto cost = bench::PaperCostModel();
  er::AttributeBlocking blocking(gen::kSkewBlockField);

  core::TextTable table;
  table.SetHeader({"s", "pairs", "Basic ms/10^4", "BlockSplit ms/10^4",
                   "PairRange ms/10^4", "Basic/BlockSplit"});

  for (double s : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    gen::SkewConfig cfg;
    cfg.num_entities = bench::Ds1Entities();
    cfg.num_blocks = 100;
    cfg.skew = s;
    auto entities = gen::GenerateSkewed(cfg);
    if (!entities.ok()) {
      std::fprintf(stderr, "%s\n", entities.status().ToString().c_str());
      return 1;
    }
    auto bdm = bench::BuildBdm(*entities, blocking, kMapTasks);
    const double pairs = static_cast<double>(bdm.TotalPairs());

    double per_1e4[3] = {0, 0, 0};
    int i = 0;
    for (auto kind : lb::AllStrategies()) {
      auto res = bench::Simulate(kind, bdm, kReduceTasks, kNodes, cost);
      per_1e4[i++] = res.total_s * 1000.0 / (pairs / 1e4);
    }
    table.AddRow({bench::Fmt(s, 1), FormatWithCommas(bdm.TotalPairs()),
                  bench::Fmt(per_1e4[0], 1), bench::Fmt(per_1e4[1], 1),
                  bench::Fmt(per_1e4[2], 1),
                  bench::Fmt(per_1e4[0] / per_1e4[1], 1) + "x"});
  }
  table.Print();
  std::printf(
      "\nPaper: at s=1 Basic needs ~225 ms per 10^4 comparisons, >12x the\n"
      "balanced strategies; at s=0 Basic is fastest (no BDM overhead);\n"
      "BlockSplit and PairRange are stable across all skews.\n");
  return 0;
}
