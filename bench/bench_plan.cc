// Planning-throughput micro benchmark: how fast each strategy turns a BDM
// into its full MatchPlan, and how fast plans round-trip through JSON
// (the plan-cache read/write path). Uses the dependency-free bench_json.h
// harness; `--json BENCH_plan.json` emits the machine-readable baseline.
//
//   $ ./bench_plan [--json <path>] [--reps N] [--min-rep-ms N]
#include <map>
#include <string>
#include <vector>

#include "bdm/bdm.h"
#include "bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "er/blocking.h"
#include "gen/skew_gen.h"
#include "lb/plan_io.h"
#include "lb/strategy.h"

using namespace erlb;

namespace {

/// A skewed BDM shaped like the figure benchmarks' datasets: `entities`
/// entities over `blocks` blocks across `m` partitions.
bdm::Bdm MakeBdm(uint32_t entities, uint32_t blocks, uint32_t m,
                 double skew, uint64_t seed) {
  gen::SkewConfig cfg;
  cfg.num_entities = entities;
  cfg.num_blocks = blocks;
  cfg.skew = skew;
  cfg.seed = seed;
  auto generated = gen::GenerateSkewed(cfg);
  ERLB_CHECK(generated.ok());
  er::AttributeBlocking blocking(gen::kSkewBlockField);
  std::vector<std::vector<std::string>> keys(m);
  for (size_t i = 0; i < generated->size(); ++i) {
    keys[i * m / generated->size()].push_back(
        blocking.Key((*generated)[i]));
  }
  auto bdm = bdm::Bdm::FromKeys(keys);
  ERLB_CHECK(bdm.ok());
  return std::move(bdm).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  bench::MicroBench harness("bench_plan");
  if (!harness.ParseArgs(argc, argv)) return 1;

  const uint32_t r = 100;
  bdm::Bdm bdm = MakeBdm(/*entities=*/50000, /*blocks=*/200, /*m=*/20,
                         /*skew=*/0.8, /*seed=*/7);
  lb::MatchJobOptions options;
  options.num_reduce_tasks = r;

  // ---- BuildPlan throughput per strategy -------------------------------
  for (auto kind : lb::AllStrategies()) {
    auto strategy = lb::MakeStrategy(kind);
    harness.Run(std::string("build_plan/") + lb::StrategyName(kind),
                [&strategy, &bdm, &options] {
                  auto plan = strategy->BuildPlan(bdm, options);
                  ERLB_CHECK(plan.ok());
                });
  }

  // BlockSplit with sub-splits multiplies virtual partitions — the
  // heaviest planning configuration.
  {
    auto strategy = lb::MakeStrategy(lb::StrategyKind::kBlockSplit);
    lb::MatchJobOptions sub_options = options;
    sub_options.sub_splits = 4;
    harness.Run("build_plan/BlockSplit_sub4",
                [&strategy, &bdm, &sub_options] {
                  auto plan = strategy->BuildPlan(bdm, sub_options);
                  ERLB_CHECK(plan.ok());
                });
  }

  // ---- Plan cache path: JSON serialize / parse -------------------------
  for (auto kind : lb::AllStrategies()) {
    auto plan = lb::MakeStrategy(kind)->BuildPlan(bdm, options);
    ERLB_CHECK(plan.ok());
    const std::string json = lb::MatchPlanToJson(*plan);
    harness.Run(std::string("plan_to_json/") + lb::StrategyName(kind),
                [&plan] {
                  std::string out = lb::MatchPlanToJson(*plan);
                  ERLB_CHECK(!out.empty());
                });
    harness.Run(std::string("plan_from_json/") + lb::StrategyName(kind),
                [&json] {
                  auto parsed = lb::MatchPlanFromJson(json);
                  ERLB_CHECK(parsed.ok());
                });
  }

  // ---- Large-sparse case: planning-style scan over >=1M blocks ---------
  // The win of the CSR-backed BDM: a Basic-style planning pass (hash each
  // block to its reduce task, accumulate pair totals) over contiguous
  // arrays with precomputed per-block aggregates, against the same pass
  // over the map-backed layout the sparse representation replaced.
  {
    constexpr uint32_t kBlocks = 1u << 20;  // 1,048,576
    constexpr uint32_t kM = 32;
    std::vector<bdm::BdmTriple> triples;
    triples.reserve(kBlocks * 2);
    for (uint32_t b = 0; b < kBlocks; ++b) {
      bdm::BdmTriple t;
      t.block_key = "b" + std::to_string(b);
      const uint32_t nonzeros = 1 + b % 3;
      for (uint32_t c = 0; c < nonzeros; ++c) {
        t.partition = (b * 7 + c * 11) % kM;
        t.count = 1 + (b + c) % 5;
        triples.push_back(t);
      }
    }
    auto sparse = bdm::Bdm::FromTriples(triples, kM);
    ERLB_CHECK(sparse.ok());

    // The previous representation, rebuilt verbatim: one map node per
    // block, cells in a per-block vector.
    std::map<std::string, std::vector<bdm::BdmCell>> map_backed;
    for (const auto& t : triples) {
      map_backed[t.block_key].push_back(bdm::BdmCell{t.partition, t.count});
    }

    std::vector<uint64_t> pairs_per_task(r);
    harness.Run("plan_scan_1m/map_backed", [&map_backed, &pairs_per_task] {
      std::fill(pairs_per_task.begin(), pairs_per_task.end(), 0);
      for (const auto& [key, cells] : map_backed) {
        uint64_t n = 0;
        for (const bdm::BdmCell& cell : cells) n += cell.count;
        pairs_per_task[Fnv1a64(key) % pairs_per_task.size()] +=
            n * (n - 1) / 2;
      }
      ERLB_CHECK(!pairs_per_task.empty());
    });
    harness.Run("plan_scan_1m/block_view", [&sparse, &pairs_per_task] {
      std::fill(pairs_per_task.begin(), pairs_per_task.end(), 0);
      sparse->ForEachBlock([&](const bdm::Bdm::BlockView& block) {
        pairs_per_task[Fnv1a64(block.key()) % pairs_per_task.size()] +=
            block.pairs();
      });
      ERLB_CHECK(!pairs_per_task.empty());
    });
    harness.Speedup("plan_scan_1m/speedup", "plan_scan_1m/map_backed",
                    "plan_scan_1m/block_view");

    // A real BuildPlan at the same scale (Basic hashes every block).
    auto basic = lb::MakeStrategy(lb::StrategyKind::kBasic);
    harness.Run("build_plan_1m/Basic", [&basic, &sparse, &options] {
      auto plan = basic->BuildPlan(*sparse, options);
      ERLB_CHECK(plan.ok());
    });
  }

  return harness.Finish();
}
