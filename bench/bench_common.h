// Shared helpers for the figure-reproduction benches: dataset presets
// (DS1-like, DS2-like), BDM construction for a given map-task count, and
// simulation wrappers. Scale is controlled by the ERLB_SCALE environment
// variable: "full" (paper scale: DS1 114k, DS2 1.4M entities) or "small"
// (default; ~4x reduced DS1, ~20x reduced DS2 for fast bench runs — the
// figure *shapes* are scale-invariant).
#ifndef ERLB_BENCH_BENCH_COMMON_H_
#define ERLB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bdm/bdm.h"
#include "common/logging.h"
#include "er/blocking.h"
#include "er/entity.h"
#include "gen/product_gen.h"
#include "gen/publication_gen.h"
#include "lb/strategy.h"
#include "sim/cost_model.h"
#include "sim/er_sim.h"

namespace erlb {
namespace bench {

inline bool FullScale() {
  const char* s = std::getenv("ERLB_SCALE");
  return s != nullptr && std::strcmp(s, "full") == 0;
}

inline uint64_t Ds1Entities() { return FullScale() ? 114000 : 30000; }
inline uint64_t Ds2Entities() { return FullScale() ? 1400000 : 70000; }

/// DS1-like product descriptions.
inline std::vector<er::Entity> MakeDs1() {
  gen::ProductConfig cfg;
  cfg.num_entities = Ds1Entities();
  auto e = gen::GenerateProducts(cfg);
  ERLB_CHECK(e.ok()) << e.status().ToString();
  return std::move(e).ValueOrDie();
}

/// DS2-like publication records.
inline std::vector<er::Entity> MakeDs2() {
  gen::PublicationConfig cfg;
  cfg.num_entities = Ds2Entities();
  auto e = gen::GeneratePublications(cfg);
  ERLB_CHECK(e.ok()) << e.status().ToString();
  return std::move(e).ValueOrDie();
}

/// Builds the BDM of `entities` under `blocking` for `m` input partitions
/// (contiguous splits, as HDFS would).
inline bdm::Bdm BuildBdm(const std::vector<er::Entity>& entities,
                         const er::BlockingFunction& blocking, uint32_t m) {
  std::vector<std::vector<std::string>> keys(m);
  const size_t n = entities.size();
  const size_t base = n / m, extra = n % m;
  size_t idx = 0;
  for (uint32_t p = 0; p < m; ++p) {
    size_t count = base + (p < extra ? 1 : 0);
    keys[p].reserve(count);
    for (size_t i = 0; i < count; ++i) {
      keys[p].push_back(blocking.Key(entities[idx++]));
    }
  }
  auto bdm = bdm::Bdm::FromKeys(keys);
  ERLB_CHECK(bdm.ok()) << bdm.status().ToString();
  return std::move(bdm).ValueOrDie();
}

/// The evaluation's cluster cost model (see sim/cost_model.h for the
/// calibration rationale).
inline sim::CostModel PaperCostModel() {
  sim::CostModel cost;
  // Computational skew ("heterogeneous hardware and matching attribute
  // values of different length", Section VI-B): ~15% node speed spread.
  cost.heterogeneity_sigma = 0.15;
  return cost;
}

/// Simulated end-to-end seconds for one strategy.
inline sim::ErSimResult Simulate(lb::StrategyKind kind,
                                 const bdm::Bdm& bdm, uint32_t r,
                                 uint32_t nodes,
                                 const sim::CostModel& cost) {
  sim::ClusterConfig cluster;
  cluster.num_nodes = nodes;
  auto res = sim::SimulateEr(kind, bdm, r, cluster, cost);
  ERLB_CHECK(res.ok()) << res.status().ToString();
  return std::move(res).ValueOrDie();
}

inline std::string Fmt(double v, int digits = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace bench
}  // namespace erlb

#endif  // ERLB_BENCH_BENCH_COMMON_H_
