// Ablation (extension): BlockSplit with sub-partition chunking
// (sub_splits = S divides each per-partition sub-block into S chunks).
// S = 1 is the paper's algorithm. On title-sorted input — BlockSplit's
// worst case (Figure 11) — finer chunks restore splittability of the
// dominant block and recover most of the lost performance, at the cost of
// extra replication.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "core/table.h"

int main() {
  using namespace erlb;
  std::printf(
      "=== Ablation: BlockSplit sub-split factor on sorted input (DS1, "
      "n=10, m=20, r=100) ===\n\n");

  const uint32_t kNodes = 10, kMapTasks = 20, kReduceTasks = 100;
  auto cost = bench::PaperCostModel();
  er::PrefixBlocking blocking(0, 3);

  auto entities = bench::MakeDs1();
  std::sort(entities.begin(), entities.end(),
            [](const er::Entity& a, const er::Entity& b) {
              return a.title() < b.title();
            });
  auto bdm = bench::BuildBdm(entities, blocking, kMapTasks);
  auto strategy = lb::MakeStrategy(lb::StrategyKind::kBlockSplit);

  // Unsorted baseline for reference.
  auto unsorted = bench::MakeDs1();
  auto bdm_unsorted = bench::BuildBdm(unsorted, blocking, kMapTasks);
  auto baseline = bench::Simulate(lb::StrategyKind::kBlockSplit,
                                  bdm_unsorted, kReduceTasks, kNodes, cost);
  std::printf("unsorted BlockSplit baseline (S=1): %.1f s\n\n",
              baseline.total_s);

  core::TextTable table;
  table.SetHeader({"S", "imbalance", "map KV pairs", "sorted sim s",
                   "vs unsorted"});
  for (uint32_t sub : {1u, 2u, 4u, 8u, 16u}) {
    lb::MatchJobOptions options;
    options.num_reduce_tasks = kReduceTasks;
    options.sub_splits = sub;
    auto plan = strategy->Plan(bdm, options);
    ERLB_CHECK(plan.ok());
    sim::ClusterConfig cluster;
    cluster.num_nodes = kNodes;
    auto res = sim::SimulateEr(lb::StrategyKind::kBlockSplit, bdm,
                               kReduceTasks, cluster, cost,
                               lb::TaskAssignment::kGreedyLpt, sub);
    ERLB_CHECK(res.ok());
    table.AddRow({std::to_string(sub),
                  bench::Fmt(plan->ReduceImbalance(), 2),
                  FormatWithCommas(plan->TotalMapOutputPairs()),
                  bench::Fmt(res->total_s),
                  bench::Fmt(res->total_s / baseline.total_s, 2) + "x"});
  }
  table.Print();
  std::printf(
      "\nS=1 reproduces the paper's sorted-input penalty; growing S\n"
      "restores sub-block granularity and converges back towards the\n"
      "unsorted baseline.\n");
  return 0;
}
