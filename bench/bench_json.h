// Self-contained timing + JSON reporting harness for the micro benches.
//
// Unlike the figure benches (which print paper-style tables), the micro
// benches record a machine-readable perf trajectory: every run can emit a
// BENCH_*.json document via `--json <path>` so CI archives a data point
// per commit and regressions are diffable. The harness deliberately has
// no external dependency (Google Benchmark is optional in this repo) —
// it times closures around a median-of-repetitions protocol and writes
// the JSON by hand.
//
// Protocol per benchmark: one untimed warm-up call, then `reps` timed
// repetitions; within one repetition the closure runs as often as needed
// to accumulate `min_rep_millis` of wall time. Reported nanos/op is the
// median repetition's time divided by its iteration count. Before/after
// pairs are registered with `Speedup`, which derives old/new from two
// previously added results.
#ifndef ERLB_BENCH_BENCH_JSON_H_
#define ERLB_BENCH_BENCH_JSON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace erlb {
namespace bench {

/// One measured benchmark (or one derived speedup entry).
struct MicroResult {
  std::string name;
  double nanos_per_op = 0.0;
  int64_t iterations = 0;   // total timed iterations across repetitions
  double speedup = 0.0;     // only for derived entries: old / new
  std::string baseline;     // derived entries: the "before" result name
  std::string contender;    // derived entries: the "after" result name
};

/// Collects results, prints a table, and writes the JSON document.
class MicroBench {
 public:
  /// \param bench_name document-level name, e.g. "bench_micro_mr".
  explicit MicroBench(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Parses `--json <path>` / `--json=<path>` / `--reps N` /
  /// `--min-rep-ms N`. Returns false (after printing usage) on unknown
  /// flags.
  bool ParseArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto value = [&](const char* flag) -> const char* {
        size_t flag_len = std::strlen(flag);
        if (arg.compare(0, flag_len, flag) != 0) return nullptr;
        if (arg.size() > flag_len && arg[flag_len] == '=') {
          return arg.c_str() + flag_len + 1;
        }
        if (arg.size() == flag_len && i + 1 < argc) return argv[++i];
        return nullptr;
      };
      if (const char* v = value("--json")) {
        json_path_ = v;
      } else if (const char* v = value("--reps")) {
        reps_ = std::max(1, std::atoi(v));
      } else if (const char* v = value("--min-rep-ms")) {
        min_rep_millis_ = std::max(1, std::atoi(v));
      } else {
        std::fprintf(stderr,
                     "usage: %s [--json <path>] [--reps N] [--min-rep-ms N]\n",
                     argv[0]);
        return false;
      }
    }
    return true;
  }

  /// Times `fn` (a void() closure) and records the result under `name`.
  template <typename Fn>
  void Run(const std::string& name, Fn&& fn) {
    fn();  // warm-up (also first-touches any lazily built state)
    std::vector<double> nanos_per_op(static_cast<size_t>(reps_));
    int64_t total_iters = 0;
    for (int rep = 0; rep < reps_; ++rep) {
      int64_t iters = 0;
      Stopwatch watch;
      do {
        fn();
        ++iters;
      } while (watch.ElapsedMillis() < min_rep_millis_);
      nanos_per_op[static_cast<size_t>(rep)] =
          static_cast<double>(watch.ElapsedNanos()) /
          static_cast<double>(iters);
      total_iters += iters;
    }
    std::sort(nanos_per_op.begin(), nanos_per_op.end());
    MicroResult res;
    res.name = name;
    res.nanos_per_op = nanos_per_op[nanos_per_op.size() / 2];
    res.iterations = total_iters;
    results_.push_back(res);
    std::printf("%-40s %14.1f ns/op   (%lld iters)\n", name.c_str(),
                res.nanos_per_op, static_cast<long long>(total_iters));
  }

  /// Records old/new for two results added earlier via Run.
  void Speedup(const std::string& name, const std::string& baseline,
               const std::string& contender) {
    const MicroResult* b = Find(baseline);
    const MicroResult* c = Find(contender);
    ERLB_CHECK(b != nullptr) << "unknown baseline " << baseline;
    ERLB_CHECK(c != nullptr) << "unknown contender " << contender;
    MicroResult res;
    res.name = name;
    res.baseline = baseline;
    res.contender = contender;
    res.speedup = b->nanos_per_op / c->nanos_per_op;
    results_.push_back(res);
    std::printf("%-40s %14.2fx speedup  (%s / %s)\n", name.c_str(),
                res.speedup, baseline.c_str(), contender.c_str());
  }

  /// Writes the JSON document if --json was given. Returns process exit
  /// code (1 if the file could not be written).
  int Finish() const {
    if (json_path_.empty()) return 0;
    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path_.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_name_.c_str());
    std::fprintf(f, "  \"unit\": \"ns/op\",\n");
    std::fprintf(f, "  \"reps\": %d,\n", reps_);
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < results_.size(); ++i) {
      const MicroResult& r = results_[i];
      if (r.baseline.empty()) {
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"nanos_per_op\": %.1f, "
                     "\"iterations\": %lld}",
                     r.name.c_str(), r.nanos_per_op,
                     static_cast<long long>(r.iterations));
      } else {
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"speedup\": %.3f, "
                     "\"baseline\": \"%s\", \"contender\": \"%s\"}",
                     r.name.c_str(), r.speedup, r.baseline.c_str(),
                     r.contender.c_str());
      }
      std::fprintf(f, "%s\n", i + 1 < results_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path_.c_str());
    return 0;
  }

  const MicroResult* Find(const std::string& name) const {
    for (const auto& r : results_) {
      if (r.name == name) return &r;
    }
    return nullptr;
  }

 private:
  std::string bench_name_;
  std::string json_path_;
  int reps_ = 5;
  int min_rep_millis_ = 20;
  std::vector<MicroResult> results_;
};

}  // namespace bench
}  // namespace erlb

#endif  // ERLB_BENCH_BENCH_JSON_H_
