// Figure 13: execution times and speedup vs. cluster size n (1..100) on
// DS1, with m = 2n map tasks and r = 10n reduce tasks.
//
// Expected shape (paper): Basic saturates beyond ~2 nodes (the largest
// block serializes ~70% of the pairs); BlockSplit and PairRange scale
// almost linearly up to ~10 nodes for this small dataset, then flatten;
// at n=100 BlockSplit overtakes PairRange, whose per-range replication
// overhead grows with r = 1000.
#include <cstdio>

#include "bench_common.h"
#include "core/table.h"

int main() {
  using namespace erlb;
  std::printf(
      "=== Figure 13: execution times and speedup vs. nodes (DS1) ===\n");
  std::printf("m = 2n map tasks, r = 10n reduce tasks\n\n");

  auto cost = bench::PaperCostModel();
  auto entities = bench::MakeDs1();
  er::PrefixBlocking blocking(0, 3);

  const uint32_t nodes[] = {1, 2, 5, 10, 20, 40, 100};
  double base[3] = {0, 0, 0};

  core::TextTable table;
  table.SetHeader({"n", "Basic s", "BlockSplit s", "PairRange s",
                   "Basic spd", "BlockSplit spd", "PairRange spd"});
  for (uint32_t n : nodes) {
    auto bdm = bench::BuildBdm(entities, blocking, 2 * n);
    double secs[3];
    int i = 0;
    for (auto kind : lb::AllStrategies()) {
      secs[i++] =
          bench::Simulate(kind, bdm, 10 * n, n, cost).total_s;
    }
    if (n == 1) {
      base[0] = secs[0];
      base[1] = secs[1];
      base[2] = secs[2];
    }
    table.AddRow({std::to_string(n), bench::Fmt(secs[0]),
                  bench::Fmt(secs[1]), bench::Fmt(secs[2]),
                  bench::Fmt(base[0] / secs[0], 1),
                  bench::Fmt(base[1] / secs[1], 1),
                  bench::Fmt(base[2] / secs[2], 1)});
  }
  table.Print();
  std::printf(
      "\nPaper: Basic does not scale past 2 nodes; BlockSplit/PairRange\n"
      "scale almost linearly to ~10 nodes on this small dataset;\n"
      "BlockSplit outperforms PairRange for DS1 at n=100 because the\n"
      "large r=1000 makes PairRange's replication overhead significant\n"
      "relative to the small per-task workload.\n");
  return 0;
}
