// Micro-benchmarks for PairRange's enumeration primitives: cell index,
// its inverse, and the relevant-range computation (skip-jump vs. brute
// force) — the map-side hot path.
#include <benchmark/benchmark.h>

#include <vector>

#include "lb/pair_enum.h"

namespace {

using namespace erlb::lb;

void BM_CellIndex(benchmark::State& state) {
  const uint64_t n = 100000;
  uint64_t x = 0, y = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CellIndex(x, y, n));
    x = (x + 7919) % (n - 1);
    y = x + 1 + (y % (n - x - 1));
  }
}
BENCHMARK(BM_CellIndex);

void BM_CellToPair(benchmark::State& state) {
  const uint64_t n = 100000;
  const uint64_t total = PairsOfBlock(n);
  uint64_t c = 0, x, y;
  for (auto _ : state) {
    CellToPair(c, n, &x, &y);
    benchmark::DoNotOptimize(x + y);
    c = (c + 1000003) % total;
  }
}
BENCHMARK(BM_CellToPair);

void BM_RelevantRangesFast(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const uint32_t r = 100;
  const uint64_t total = PairsOfBlock(n);
  std::vector<uint32_t> out;
  uint64_t x = 0;
  for (auto _ : state) {
    out.clear();
    RelevantRangesOneSource(x, n, 0, total, r, &out);
    benchmark::DoNotOptimize(out.data());
    x = (x + 101) % n;
  }
}
BENCHMARK(BM_RelevantRangesFast)->Arg(1000)->Arg(100000);

void BM_RelevantRangesBrute(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const uint32_t r = 100;
  const uint64_t total = PairsOfBlock(n);
  std::vector<uint32_t> out;
  uint64_t x = 0;
  for (auto _ : state) {
    out.clear();
    RelevantRangesOneSourceBrute(x, n, 0, total, r, &out);
    benchmark::DoNotOptimize(out.data());
    x = (x + 101) % n;
  }
}
BENCHMARK(BM_RelevantRangesBrute)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
