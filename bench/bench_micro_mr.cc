// Micro-benchmarks for the MR runtime and the end-to-end pipeline on
// small real workloads (actual multi-threaded execution with real edit
// distance matching).
#include <benchmark/benchmark.h>

#include "core/pipeline.h"
#include "er/blocking.h"
#include "er/matcher.h"
#include "gen/product_gen.h"

namespace {

using namespace erlb;

std::vector<er::Entity> SmallDataset(uint64_t n) {
  gen::ProductConfig cfg;
  cfg.num_entities = n;
  cfg.num_brands = 60;
  cfg.zipf_exponent = 1.0;  // milder skew keeps the pair count bounded
  auto e = gen::GenerateProducts(cfg);
  return *e;
}

void BM_PipelineEndToEnd(benchmark::State& state) {
  auto kind = static_cast<lb::StrategyKind>(state.range(0));
  auto entities = SmallDataset(3000);
  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  core::ErPipelineConfig cfg;
  cfg.strategy = kind;
  cfg.num_map_tasks = 4;
  cfg.num_reduce_tasks = 16;
  cfg.num_workers = 4;
  core::ErPipeline pipeline(cfg);
  int64_t comparisons = 0;
  for (auto _ : state) {
    auto result = pipeline.Deduplicate(entities, blocking, matcher);
    benchmark::DoNotOptimize(result.ok());
    comparisons = result->comparisons;
  }
  state.counters["comparisons"] = static_cast<double>(comparisons);
  state.SetLabel(lb::StrategyName(kind));
}
BENCHMARK(BM_PipelineEndToEnd)
    ->Arg(static_cast<int>(lb::StrategyKind::kBasic))
    ->Arg(static_cast<int>(lb::StrategyKind::kBlockSplit))
    ->Arg(static_cast<int>(lb::StrategyKind::kPairRange))
    ->Unit(benchmark::kMillisecond);

void BM_BdmJobOnly(benchmark::State& state) {
  auto entities = SmallDataset(10000);
  er::PrefixBlocking blocking(0, 3);
  er::Partitions parts = er::SplitIntoPartitions(entities, 4);
  mr::JobRunner runner(4);
  bdm::BdmJobOptions options;
  options.num_reduce_tasks = 8;
  for (auto _ : state) {
    auto out = bdm::RunBdmJob(parts, blocking, options, runner);
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_BdmJobOnly)->Unit(benchmark::kMillisecond);

void BM_WorkerScaling(benchmark::State& state) {
  auto entities = SmallDataset(4000);
  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  core::ErPipelineConfig cfg;
  cfg.strategy = lb::StrategyKind::kBlockSplit;
  cfg.num_map_tasks = 8;
  cfg.num_reduce_tasks = 32;
  cfg.num_workers = static_cast<uint32_t>(state.range(0));
  core::ErPipeline pipeline(cfg);
  for (auto _ : state) {
    auto result = pipeline.Deduplicate(entities, blocking, matcher);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_WorkerScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
