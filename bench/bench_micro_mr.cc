// Micro-benchmarks for the MR engine's hot path, with explicit
// before/after comparisons:
//
//  * shuffle: the reduce-side shuffle kernel on m sorted runs — the old
//    concatenate + stable_sort path (comparisons dispatched through
//    std::function, as the old engine did) against the loser-tree k-way
//    merge with an inlined comparator (what the engine runs now). The
//    shuffle-dominated workload of the PR-2 acceptance gate.
//  * engine: one full JobRunner::Run of a counting job, std::function
//    JobSpec vs. TypedJobSpec (devirtualized comp/group/part).
//  * pipeline: end-to-end BlockSplit deduplication on a small product
//    dataset (real multi-threaded matching), for the trajectory.
//
// `--json <path>` writes the results as BENCH_*.json (see bench_json.h).
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "er/blocking.h"
#include "er/matcher.h"
#include "gen/product_gen.h"
#include "mr/job.h"
#include "mr/merge.h"

namespace {

using namespace erlb;

using ShufflePair = std::pair<uint64_t, uint64_t>;

// Prevents the optimizer from discarding benchmark results.
volatile uint64_t g_sink = 0;

/// m sorted runs with heavy key duplication, ~total_pairs pairs overall —
/// the shape a reduce task receives from m map tasks.
std::vector<std::vector<ShufflePair>> MakeSortedRuns(size_t m,
                                                     size_t total_pairs) {
  Pcg32 rng(42);
  const uint64_t key_space = static_cast<uint64_t>(total_pairs) / 4 + 1;
  std::vector<std::vector<ShufflePair>> runs(m);
  for (size_t t = 0; t < m; ++t) {
    const size_t len = total_pairs / m;
    runs[t].reserve(len);
    for (size_t i = 0; i < len; ++i) {
      runs[t].push_back({rng.Next() % key_space,
                         static_cast<uint64_t>(t) << 32 | i});
    }
    std::stable_sort(runs[t].begin(), runs[t].end(),
                     [](const ShufflePair& a, const ShufflePair& b) {
                       return a.first < b.first;
                     });
  }
  return runs;
}

void BenchShuffle(bench::MicroBench* mb) {
  const auto master = MakeSortedRuns(8, 1 << 19);

  // The engine's previous reduce-side shuffle: concatenate + stable_sort,
  // every comparison through std::function.
  std::function<bool(const ShufflePair&, const ShufflePair&)> fn_less =
      [](const ShufflePair& a, const ShufflePair& b) {
        return a.first < b.first;
      };
  auto inline_less = [](const ShufflePair& a, const ShufflePair& b) {
    return a.first < b.first;
  };

  // Sanity: both paths produce the identical sequence.
  {
    auto expected = mr::ConcatAndStableSort(
        std::span<const std::vector<ShufflePair>>(master), fn_less);
    auto runs = master;
    auto actual = mr::MergeSortedRuns(std::span(runs), inline_less);
    ERLB_CHECK(actual == expected) << "shuffle paths diverge";
  }

  // The merge variants consume their input, so their timed closures must
  // deep-copy `master` each iteration — a cost the engine's real reduce
  // path never pays (it moves bucket columns). The copy-only entry makes
  // the pure kernel cost derivable (merge - copy) from the JSON; the
  // derived speedup is therefore conservative.
  mb->Run("shuffle/copy_runs_only", [&] {
    auto runs = master;
    g_sink = g_sink + runs.size() + runs.front().front().second;
  });
  mb->Run("shuffle/old_concat_sort_fn", [&] {
    auto out = mr::ConcatAndStableSort(
        std::span<const std::vector<ShufflePair>>(master), fn_less);
    g_sink = g_sink + out.size() + out.front().second;
  });
  mb->Run("shuffle/new_kway_merge", [&] {
    auto runs = master;  // the merge consumes its input
    auto out = mr::MergeSortedRuns(std::span(runs), inline_less);
    g_sink = g_sink + out.size() + out.front().second;
  });
  mb->Run("shuffle/loser_tree_merge", [&] {
    auto runs = master;
    auto out = mr::LoserTreeMerge(std::span(runs), inline_less);
    g_sink = g_sink + out.size() + out.front().second;
  });
  mb->Speedup("shuffle/speedup", "shuffle/old_concat_sort_fn",
              "shuffle/new_kway_merge");
}

// ---------------------------------------------------------------------
// Whole-engine comparison: std::function spec vs. typed spec.
// ---------------------------------------------------------------------

class ModMapper : public mr::Mapper<int, int, int, int> {
 public:
  void Map(const int&, const int& v, mr::MapContext<int, int>* ctx) override {
    ctx->Emit(v & 1023, 1);
  }
};

class CountReducer : public mr::Reducer<int, int, int, int> {
 public:
  void Reduce(std::span<const std::pair<int, int>> group,
              mr::ReduceContext<int, int>* ctx) override {
    ctx->Emit(group.front().first, static_cast<int>(group.size()));
  }
};

struct IntLessFn {
  bool operator()(const int& a, const int& b) const { return a < b; }
};
struct IntEqualFn {
  bool operator()(const int& a, const int& b) const { return a == b; }
};
struct IntModPartitionFn {
  uint32_t operator()(const int& k, uint32_t r) const {
    return static_cast<uint32_t>(k) % r;
  }
};

template <typename Spec>
void FillEngineSpec(Spec* spec) {
  spec->num_reduce_tasks = 8;
  spec->mapper_factory = [](const mr::TaskContext&) {
    return std::make_unique<ModMapper>();
  };
  spec->reducer_factory = [](const mr::TaskContext&) {
    return std::make_unique<CountReducer>();
  };
}

void BenchEngine(bench::MicroBench* mb) {
  std::vector<std::vector<std::pair<int, int>>> input(8);
  Pcg32 rng(7);
  for (auto& part : input) {
    part.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      part.push_back({0, static_cast<int>(rng.Next() & 0x7fffffff)});
    }
  }
  mr::JobRunner runner(4);

  mr::JobSpec<int, int, int, int, int, int> fn_spec;
  FillEngineSpec(&fn_spec);
  fn_spec.partitioner = [](const int& k, uint32_t r) {
    return static_cast<uint32_t>(k) % r;
  };
  fn_spec.key_less = [](const int& a, const int& b) { return a < b; };
  fn_spec.group_equal = [](const int& a, const int& b) { return a == b; };

  mr::TypedJobSpec<int, int, int, int, int, int, IntLessFn, IntEqualFn,
                   IntModPartitionFn>
      typed_spec;
  FillEngineSpec(&typed_spec);

  mb->Run("engine/function_spec", [&] {
    auto result = runner.Run(fn_spec, input);
    g_sink = g_sink + static_cast<uint64_t>(result.metrics.TotalMapOutputPairs());
  });
  mb->Run("engine/typed_spec", [&] {
    auto result = runner.Run(typed_spec, input);
    g_sink = g_sink + static_cast<uint64_t>(result.metrics.TotalMapOutputPairs());
  });
  mb->Speedup("engine/speedup", "engine/function_spec", "engine/typed_spec");
}

// ---------------------------------------------------------------------
// Scheduler comparison, two shapes:
//  * skew: a Fig-9-style map phase — task sizes decay as e^(-s*k) over
//    many tasks, so the phase has one dominant task and a long tail.
//    Work stealing must hold the line here (the FIFO pool is already a
//    dynamic list scheduler; the stealing path must not cost makespan).
//  * overhead: thousands of near-empty tasks, where the per-task cost is
//    the scheduler itself — the atomic shard claim against the pool's
//    mutex + condvar handoff per task.
// ---------------------------------------------------------------------

void BenchSkewScheduler(bench::MicroBench* mb) {
  constexpr uint32_t kTasks = 128;
  std::vector<std::vector<std::pair<int, int>>> input(kTasks);
  Pcg32 rng(11);
  for (uint32_t t = 0; t < kTasks; ++t) {
    // e^(-s*k) sizes with s tuned so the head task is ~20k records and
    // the tail is single digits — the Figure 9 skew shape.
    const auto n =
        static_cast<size_t>(20000.0 * std::exp(-0.08 * t)) + 1;
    input[t].reserve(n);
    for (size_t i = 0; i < n; ++i) {
      input[t].push_back({0, static_cast<int>(rng.Next() & 0x7fffffff)});
    }
  }

  mr::JobSpec<int, int, int, int, int, int> spec;
  FillEngineSpec(&spec);
  spec.num_reduce_tasks = 4;
  spec.partitioner = [](const int& k, uint32_t r) {
    return static_cast<uint32_t>(k) % r;
  };
  spec.key_less = [](const int& a, const int& b) { return a < b; };
  spec.group_equal = [](const int& a, const int& b) { return a == b; };

  for (mr::TaskSchedulerKind kind :
       {mr::TaskSchedulerKind::kFifo, mr::TaskSchedulerKind::kWorkStealing}) {
    mr::ExecutionOptions options;
    options.scheduler = kind;
    mr::JobRunner runner(4, options);
    mb->Run(std::string("skew/") + mr::TaskSchedulerKindName(kind),
            [&runner, &spec, &input] {
              auto result = runner.Run(spec, input);
              ERLB_CHECK(result.status.ok());
              g_sink = g_sink +
                       static_cast<uint64_t>(
                           result.metrics.TotalMapOutputPairs());
            });
  }
  mb->Speedup("skew/work_stealing_vs_fifo", "skew/fifo",
              "skew/work_stealing");
}

void BenchSchedulerOverhead(bench::MicroBench* mb) {
  constexpr uint32_t kTasks = 8192;
  std::vector<uint32_t> indices(kTasks);
  for (uint32_t t = 0; t < kTasks; ++t) indices[t] = t;
  std::vector<uint8_t> touched(kTasks, 0);
  ThreadPool pool(4);

  mb->Run("scheduler_overhead/fifo_pool", [&pool, &indices, &touched] {
    for (uint32_t t : indices) {
      pool.Submit([&touched, t] { touched[t] = 1; });
    }
    pool.Wait();
    g_sink = g_sink + touched[kTasks - 1];
  });
  mb->Run("scheduler_overhead/work_stealing",
          [&pool, &indices, &touched] {
            mr::WorkStealingScheduler scheduler(indices, 4);
            scheduler.Run(&pool,
                          [&touched](uint32_t t) { touched[t] = 1; });
            g_sink = g_sink + touched[kTasks - 1];
          });
  mb->Speedup("scheduler_overhead/speedup", "scheduler_overhead/fifo_pool",
              "scheduler_overhead/work_stealing");
}

void BenchPipeline(bench::MicroBench* mb) {
  gen::ProductConfig cfg;
  cfg.num_entities = 2000;
  cfg.num_brands = 60;
  cfg.zipf_exponent = 1.0;  // milder skew keeps the pair count bounded
  auto entities_res = gen::GenerateProducts(cfg);
  ERLB_CHECK(entities_res.ok());
  const auto& entities = *entities_res;

  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);
  core::ErPipelineConfig pipe_cfg;
  pipe_cfg.strategy = lb::StrategyKind::kBlockSplit;
  pipe_cfg.num_map_tasks = 4;
  pipe_cfg.num_reduce_tasks = 16;
  pipe_cfg.num_workers = 4;
  core::ErPipeline pipeline(pipe_cfg);

  mb->Run("pipeline/blocksplit_e2e", [&] {
    auto result = pipeline.Deduplicate(entities, blocking, matcher);
    ERLB_CHECK(result.ok());
    g_sink = g_sink + static_cast<uint64_t>(result->comparisons);
  });
}

}  // namespace

int main(int argc, char** argv) {
  erlb::bench::MicroBench mb("bench_micro_mr");
  if (!mb.ParseArgs(argc, argv)) return 1;
  BenchShuffle(&mb);
  BenchEngine(&mb);
  BenchSkewScheduler(&mb);
  BenchSchedulerOverhead(&mb);
  BenchPipeline(&mb);
  return mb.Finish();
}
