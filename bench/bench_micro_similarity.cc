// Micro-benchmarks (google-benchmark) for the similarity kernels: full
// Levenshtein vs. the banded threshold kernel the matcher uses, plus the
// token/n-gram measures.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "er/similarity.h"

namespace {

using erlb::Pcg32;

std::vector<std::pair<std::string, std::string>> MakeTitlePairs(
    size_t count, bool similar) {
  Pcg32 rng(similar ? 1 : 2);
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string a;
    for (int j = 0; j < 24; ++j) {
      a += static_cast<char>('a' + rng.NextBounded(26));
      if (j % 6 == 5) a += ' ';
    }
    std::string b = a;
    if (similar) {
      b[rng.NextBounded(static_cast<uint32_t>(b.size()))] = 'q';
    } else {
      for (auto& c : b) {
        if (rng.NextDouble() < 0.5) {
          c = static_cast<char>('a' + rng.NextBounded(26));
        }
      }
    }
    pairs.emplace_back(std::move(a), std::move(b));
  }
  return pairs;
}

void BM_EditDistanceFull(benchmark::State& state) {
  auto pairs = MakeTitlePairs(256, state.range(0) != 0);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 255];
    benchmark::DoNotOptimize(erlb::er::EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistanceFull)->Arg(0)->Arg(1);

void BM_EditSimilarityThreshold(benchmark::State& state) {
  auto pairs = MakeTitlePairs(256, state.range(0) != 0);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 255];
    benchmark::DoNotOptimize(erlb::er::EditSimilarityAtLeast(a, b, 0.8));
  }
}
BENCHMARK(BM_EditSimilarityThreshold)->Arg(0)->Arg(1);

void BM_JaccardTokens(benchmark::State& state) {
  auto pairs = MakeTitlePairs(256, true);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 255];
    benchmark::DoNotOptimize(erlb::er::JaccardTokenSimilarity(a, b));
  }
}
BENCHMARK(BM_JaccardTokens);

void BM_TrigramSimilarity(benchmark::State& state) {
  auto pairs = MakeTitlePairs(256, true);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 255];
    benchmark::DoNotOptimize(erlb::er::NgramSimilarity(a, b, 3));
  }
}
BENCHMARK(BM_TrigramSimilarity);

}  // namespace

BENCHMARK_MAIN();
