// Micro-benchmarks for the similarity kernels, with explicit before/after
// comparisons for the PR-2 set -> sorted-vector rewrite:
//
//  * jaccard: the former per-call std::set<std::string> kernel (rebuilt
//    here as the baseline) vs. er::JaccardTokenSimilarity's thread-local
//    sort-and-intersect.
//  * ngram: same comparison for trigram similarity.
//  * edit: full Levenshtein vs. the banded threshold kernel the matcher
//    uses (no old/new pair — both are current kernels).
//
// `--json <path>` writes the results as BENCH_*.json (see bench_json.h).
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/random.h"
#include "er/similarity.h"

namespace {

using erlb::Pcg32;

volatile double g_sink = 0.0;

std::vector<std::pair<std::string, std::string>> MakeTitlePairs(
    size_t count, bool similar) {
  Pcg32 rng(similar ? 1 : 2);
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string a;
    for (int j = 0; j < 24; ++j) {
      a += static_cast<char>('a' + rng.NextBounded(26));
      if (j % 6 == 5) a += ' ';
    }
    std::string b = a;
    if (similar) {
      b[rng.NextBounded(static_cast<uint32_t>(b.size()))] = 'q';
    } else {
      for (auto& c : b) {
        if (rng.NextDouble() < 0.5) {
          c = static_cast<char>('a' + rng.NextBounded(26));
        }
      }
    }
    pairs.emplace_back(std::move(a), std::move(b));
  }
  return pairs;
}

// ---------------------------------------------------------------------
// The kernels as they were before the rewrite: per-call std::set builds.
// ---------------------------------------------------------------------

double OldJaccardOfSets(const std::set<std::string>& sa,
                        const std::set<std::string>& sb) {
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

double OldJaccardTokenSimilarity(std::string_view a, std::string_view b) {
  auto ta = erlb::er::TokenizeWords(a);
  auto tb = erlb::er::TokenizeWords(b);
  return OldJaccardOfSets({ta.begin(), ta.end()}, {tb.begin(), tb.end()});
}

double OldNgramSimilarity(std::string_view a, std::string_view b, size_t n) {
  auto ga = erlb::er::CharNgrams(a, n);
  auto gb = erlb::er::CharNgrams(b, n);
  return OldJaccardOfSets({ga.begin(), ga.end()}, {gb.begin(), gb.end()});
}

void BenchJaccard(erlb::bench::MicroBench* mb) {
  auto pairs = MakeTitlePairs(256, true);
  size_t i = 0;
  mb->Run("jaccard/old_set_based", [&] {
    const auto& [a, b] = pairs[i++ & 255];
    g_sink = g_sink + OldJaccardTokenSimilarity(a, b);
  });
  i = 0;
  mb->Run("jaccard/new_sorted_vectors", [&] {
    const auto& [a, b] = pairs[i++ & 255];
    g_sink = g_sink + erlb::er::JaccardTokenSimilarity(a, b);
  });
  mb->Speedup("jaccard/speedup", "jaccard/old_set_based",
              "jaccard/new_sorted_vectors");
}

void BenchNgram(erlb::bench::MicroBench* mb) {
  auto pairs = MakeTitlePairs(256, true);
  size_t i = 0;
  mb->Run("ngram/old_set_based", [&] {
    const auto& [a, b] = pairs[i++ & 255];
    g_sink = g_sink + OldNgramSimilarity(a, b, 3);
  });
  i = 0;
  mb->Run("ngram/new_sorted_vectors", [&] {
    const auto& [a, b] = pairs[i++ & 255];
    g_sink = g_sink + erlb::er::NgramSimilarity(a, b, 3);
  });
  mb->Speedup("ngram/speedup", "ngram/old_set_based",
              "ngram/new_sorted_vectors");
}

void BenchEdit(erlb::bench::MicroBench* mb) {
  for (bool similar : {false, true}) {
    auto pairs = MakeTitlePairs(256, similar);
    const std::string tag = similar ? "similar" : "dissimilar";
    size_t i = 0;
    mb->Run("edit/full_" + tag, [&] {
      const auto& [a, b] = pairs[i++ & 255];
      g_sink = g_sink + static_cast<double>(erlb::er::EditDistance(a, b));
    });
    i = 0;
    mb->Run("edit/banded_threshold_" + tag, [&] {
      const auto& [a, b] = pairs[i++ & 255];
      g_sink = g_sink + (erlb::er::EditSimilarityAtLeast(a, b, 0.8) ? 1.0 : 0.0);
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  erlb::bench::MicroBench mb("bench_micro_similarity");
  if (!mb.ParseArgs(argc, argv)) return 1;
  BenchJaccard(&mb);
  BenchNgram(&mb);
  BenchEdit(&mb);
  return mb.Finish();
}
