// Figure 10: execution times vs. the number of reduce tasks r (20..160)
// on DS1 with n=10 nodes, m=20 map tasks.
//
// Expected shape (paper): Basic is ~6x slower and erratic (peaks when two
// large blocks hash to one reduce task); BlockSplit is flat and low;
// PairRange gains with r and eventually outperforms BlockSplit by ~7%.
#include <cstdio>

#include "bench_common.h"
#include "core/table.h"

int main() {
  using namespace erlb;
  std::printf(
      "=== Figure 10: execution times vs. number of reduce tasks (DS1) "
      "===\n");
  std::printf("n=10 nodes, m=20 map tasks; BDM overhead included\n\n");

  const uint32_t kNodes = 10, kMapTasks = 20;
  auto cost = bench::PaperCostModel();
  auto entities = bench::MakeDs1();
  er::PrefixBlocking blocking(0, 3);
  auto bdm = bench::BuildBdm(entities, blocking, kMapTasks);

  core::TextTable table;
  table.SetHeader(
      {"r", "Basic s", "BlockSplit s", "PairRange s", "BDM job s"});
  for (uint32_t r = 20; r <= 160; r += 20) {
    auto basic =
        bench::Simulate(lb::StrategyKind::kBasic, bdm, r, kNodes, cost);
    auto split = bench::Simulate(lb::StrategyKind::kBlockSplit, bdm, r,
                                 kNodes, cost);
    auto range = bench::Simulate(lb::StrategyKind::kPairRange, bdm, r,
                                 kNodes, cost);
    table.AddRow({std::to_string(r), bench::Fmt(basic.total_s),
                  bench::Fmt(split.total_s), bench::Fmt(range.total_s),
                  bench::Fmt(split.bdm_job_s)});
  }
  table.Print();
  std::printf(
      "\nPaper: for r=160 the balanced strategies beat Basic by ~6x;\n"
      "BlockSplit is stable over the whole range; PairRange profits from\n"
      "more reduce tasks and ends up ~7%% ahead of BlockSplit.\n");
  return 0;
}
