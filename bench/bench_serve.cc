// Serving-path micro benchmark: the three costs the erlb_serve daemon
// exists to amortize, each as a before/after ratio gated by
// tools/bench_compare.py against the committed BENCH_serve.json:
//
//   plan/uncached_vs_cached   BuildPlan per request vs a plan-cache hit
//   probe/batch_vs_per_probe  one linkage run per probe vs one per batch
//   maintain/delta_vs_rebuild FromKeys rebuild vs Bdm::ApplyDelta
//
// All ratios are "old / new" with the serving-path variant as "new", so
// higher is better and a regression means the resident path lost its
// advantage.
//
//   $ ./bench_serve [--json <path>] [--reps N] [--min-rep-ms N]
#include <cstdint>
#include <string>
#include <vector>

#include "bdm/bdm.h"
#include "bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "er/blocking.h"
#include "er/matcher.h"
#include "gen/perturb.h"
#include "gen/product_gen.h"
#include "lb/strategy.h"
#include "serve/plan_cache.h"
#include "serve/session.h"

using namespace erlb;

int main(int argc, char** argv) {
  bench::MicroBench harness("bench_serve");
  if (!harness.ParseArgs(argc, argv)) return 1;

  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.8);

  // Resident corpus: 1200 clean products over 4 partitions.
  serve::SessionOptions session_options;
  session_options.num_corpus_partitions = 4;
  session_options.num_reduce_tasks = 8;
  session_options.num_workers = 2;
  serve::ServeSession session(&blocking, &matcher, session_options);
  gen::ProductConfig gen_config;
  gen_config.num_entities = 1200;
  gen_config.duplicate_fraction = 0.0;
  gen_config.seed = 51;
  auto corpus = gen::GenerateProducts(gen_config);
  ERLB_CHECK(corpus.ok());
  ERLB_CHECK(session.Insert(*corpus).ok());

  // A fixed batch of 8 probes: perturbed corpus titles, so they block
  // with (and mostly match) resident records.
  Pcg32 rng(77);
  std::vector<er::Entity> probes;
  for (int i = 0; i < 8; ++i) {
    er::Entity probe;
    probe.id = 900000000ull + static_cast<uint64_t>(i);
    probe.fields = {
        gen::Perturb((*corpus)[static_cast<size_t>(i) * 97].title(), 1, 2,
                     &rng)};
    probes.push_back(std::move(probe));
  }

  // ---- micro-batching: one linkage run per probe vs one per batch ----
  harness.Run("probe/per_probe", [&] {
    for (const auto& probe : probes) {
      auto result = session.ProbeBatch({probe});
      ERLB_CHECK(result.ok());
    }
  });
  harness.Run("probe/batched", [&] {
    auto result = session.ProbeBatch(probes);
    ERLB_CHECK(result.ok());
  });
  harness.Speedup("probe/batch_vs_per_probe", "probe/per_probe",
                  "probe/batched");

  // ---- plan cache: BuildPlan per request vs a hit ----
  const bdm::Bdm bdm = session.BdmSnapshot();
  const auto options = session_options.MatchOptions();
  harness.Run("plan/build_uncached", [&] {
    auto plan = lb::MakeStrategy(lb::StrategyKind::kBlockSplit)
                    ->BuildPlan(bdm, options);
    ERLB_CHECK(plan.ok());
  });
  serve::PlanCache cache(4);
  ERLB_CHECK(
      cache.GetOrBuild(bdm, lb::StrategyKind::kBlockSplit, options).ok());
  harness.Run("plan/cache_hit", [&] {
    auto plan =
        cache.GetOrBuild(bdm, lb::StrategyKind::kBlockSplit, options);
    ERLB_CHECK(plan.ok());
    ERLB_CHECK(plan->get() != nullptr);
  });
  harness.Speedup("plan/uncached_vs_cached", "plan/build_uncached",
                  "plan/cache_hit");

  // ---- incremental maintenance: rebuild vs ApplyDelta ----
  // A bigger synthetic matrix (Zipf keys over 6 partitions) so the
  // rebuild pays dictionary sorting and CSR construction at real size.
  const uint32_t m = 6;
  ZipfSampler zipf(800, 1.0);
  Pcg32 key_rng(13);
  std::vector<std::vector<std::string>> keys(m);
  for (uint32_t p = 0; p < m; ++p) {
    for (int i = 0; i < 4000; ++i) {
      keys[p].push_back("k" + std::to_string(zipf.Sample(&key_rng)));
    }
  }
  auto base = bdm::Bdm::FromKeys(keys);
  ERLB_CHECK(base.ok());
  // The mutation: one small insert batch (16 records).
  std::vector<bdm::BdmDeltaEntry> deltas;
  for (int i = 0; i < 16; ++i) {
    deltas.push_back(bdm::BdmDeltaEntry{
        "k" + std::to_string(zipf.Sample(&key_rng)),
        key_rng.NextBounded(m), 1});
  }
  auto mutated_keys = keys;
  for (const auto& d : deltas) {
    mutated_keys[d.partition].push_back(d.block_key);
  }
  harness.Run("maintain/rebuild", [&] {
    auto rebuilt = bdm::Bdm::FromKeys(mutated_keys);
    ERLB_CHECK(rebuilt.ok());
  });
  // Apply + revert keeps the matrix stable across iterations; the delta
  // path is charged twice and still has to win big.
  std::vector<bdm::BdmDeltaEntry> reverts = deltas;
  for (auto& d : reverts) d.delta = -d.delta;
  harness.Run("maintain/apply_delta", [&] {
    ERLB_CHECK(base->ApplyDelta(deltas).ok());
    ERLB_CHECK(base->ApplyDelta(reverts).ok());
  });
  harness.Speedup("maintain/delta_vs_rebuild", "maintain/rebuild",
                  "maintain/apply_delta");

  return harness.Finish();
}
