// Figure 8: the dataset statistics table — entities, blocks, the largest
// block's share, and the total pair workload for DS1 (products) and DS2
// (publications) under 3-letter title prefix blocking.
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "core/table.h"
#include "gen/dataset_stats.h"

int main() {
  using namespace erlb;
  std::printf("=== Figure 8: datasets used for evaluation ===\n");
  std::printf("(synthetic stand-ins; see DESIGN.md. ERLB_SCALE=%s)\n\n",
              bench::FullScale() ? "full" : "small");

  er::PrefixBlocking blocking(0, 3);
  core::TextTable table;
  table.SetHeader({"dataset", "entities", "blocks", "largest block",
                   "largest %ent", "pairs", "largest %pairs",
                   "pairs/entity"});

  struct Row {
    const char* name;
    std::vector<er::Entity> entities;
  };
  std::vector<Row> rows;
  rows.push_back({"DS1 (products)", bench::MakeDs1()});
  rows.push_back({"DS2 (publications)", bench::MakeDs2()});

  for (const auto& row : rows) {
    auto stats = gen::ComputeDatasetStats(row.entities, blocking);
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    table.AddRow({row.name, FormatWithCommas(stats->num_entities),
                  FormatWithCommas(stats->num_blocks),
                  FormatWithCommas(stats->largest_block_size),
                  bench::Fmt(stats->largest_block_entity_share * 100) + "%",
                  FormatWithCommas(stats->total_pairs),
                  bench::Fmt(stats->largest_block_pair_share * 100) + "%",
                  bench::Fmt(stats->pairs_per_entity, 1)});
  }
  table.Print();
  std::printf(
      "\nPaper reference points: DS1 ~114,000 product descriptions whose\n"
      "largest block accounts for >70%% of all pairs; DS2 ~1.4M\n"
      "publication records, an order of magnitude larger.\n");
  return 0;
}
