// Appendix I (Figures 15-17): matching two sources R and S. Reconstructs
// the appendix's running example (12 cross pairs, block z split into
// match tasks 3.0x1 / 3.0x2, PairRange ranges of 4 pairs), executes both
// strategies for real, and runs a larger synthetic R-S linkage comparing
// all strategies' balance.
#include <cstdio>

#include "bench_common.h"
#include "bdm/bdm_job.h"
#include "common/string_util.h"
#include "core/pipeline.h"
#include "core/reference.h"
#include "core/table.h"
#include "lb/block_split_plan.h"

namespace {

using namespace erlb;

er::Entity Make(uint64_t id, const char* name, const char* block,
                er::Source src) {
  er::Entity e;
  e.id = id;
  e.fields = {name, block};
  e.source = src;
  return e;
}

void AppendixExample() {
  std::printf("--- Appendix example (Figures 15-17 structure) ---\n");
  er::Partitions parts(3);
  auto R = [](uint64_t id, const char* n, const char* b) {
    return er::MakeEntityRef(Make(id, n, b, er::Source::kR));
  };
  auto S = [](uint64_t id, const char* n, const char* b) {
    return er::MakeEntityRef(Make(id, n, b, er::Source::kS));
  };
  parts[0] = {R(1, "A", "w"), R(2, "B", "w"), R(3, "C", "z"),
              R(4, "D", "z"), R(5, "E", "y"), R(6, "F", "x")};
  parts[1] = {S(101, "G", "w"), S(102, "H", "w"), S(103, "I", "z"),
              S(104, "J", "z")};
  parts[2] = {S(105, "K", "z"), S(106, "L", "y"), S(107, "M", "y")};
  std::vector<er::Source> tags{er::Source::kR, er::Source::kS,
                               er::Source::kS};

  mr::JobRunner runner(4);
  er::AttributeBlocking blocking(1);
  bdm::BdmJobOptions bdm_options;
  bdm_options.num_reduce_tasks = 3;
  bdm_options.partition_sources = tags;
  auto bdm_out = bdm::RunBdmJob(parts, blocking, bdm_options, runner);
  ERLB_CHECK(bdm_out.ok());
  const auto& bdm = bdm_out->bdm;
  std::printf("total cross pairs P = %llu (paper: 12)\n",
              static_cast<unsigned long long>(bdm.TotalPairs()));

  auto plan = lb::BlockSplitPlan::Build(bdm, 3);
  ERLB_CHECK(plan.ok());
  std::printf("BlockSplit match tasks (block.pi x pj -> reduce task):\n");
  for (const auto& t : plan->tasks()) {
    std::printf("  %u.%u x %u  comparisons=%llu -> reduce %u\n", t.block,
                t.pi, t.pj, static_cast<unsigned long long>(t.comparisons),
                t.reduce_task);
  }

  er::LambdaMatcher all(
      [](const er::Entity&, const er::Entity&) { return true; }, "all");
  lb::MatchJobOptions options;
  options.num_reduce_tasks = 3;
  for (auto kind :
       {lb::StrategyKind::kBlockSplit, lb::StrategyKind::kPairRange}) {
    auto out = lb::MakeStrategy(kind)->RunMatchJob(
        *bdm_out->annotated, bdm, all, options, runner);
    ERLB_CHECK(out.ok());
    std::printf("%s: comparisons=%lld matches=%zu map KV pairs=%lld\n",
                lb::StrategyName(kind),
                static_cast<long long>(out->comparisons),
                out->matches.size(),
                static_cast<long long>(
                    out->metrics.TotalMapOutputPairs()));
  }
}

void SyntheticLinkage() {
  std::printf("\n--- Synthetic R-S linkage (products x offers) ---\n");
  gen::ProductConfig cfg_r, cfg_s;
  cfg_r.num_entities = 6000;
  cfg_r.seed = 101;
  cfg_s.num_entities = 9000;
  cfg_s.seed = 202;
  auto r_ents = gen::GenerateProducts(cfg_r);
  auto s_ents = gen::GenerateProducts(cfg_s);
  ERLB_CHECK(r_ents.ok());
  ERLB_CHECK(s_ents.ok());
  for (auto& e : *s_ents) e.id += 10000000;

  er::PrefixBlocking blocking(0, 3);
  er::EditDistanceMatcher matcher(0.85);
  auto reference =
      core::ReferenceLink(*r_ents, *s_ents, blocking, matcher);

  core::TextTable table;
  table.SetHeader({"strategy", "matches", "comparisons", "map KV pairs",
                   "wall s", "== reference"});
  for (auto kind : lb::AllStrategies()) {
    core::ErPipelineConfig cfg;
    cfg.strategy = kind;
    cfg.num_map_tasks = 6;
    cfg.num_reduce_tasks = 24;
    core::ErPipeline pipeline(cfg);
    auto result = pipeline.Link(*r_ents, *s_ents, blocking, matcher);
    ERLB_CHECK(result.ok());
    table.AddRow({lb::StrategyName(kind),
                  FormatWithCommas(result->matches.size()),
                  FormatWithCommas(result->comparisons),
                  FormatWithCommas(
                      result->match_metrics.TotalMapOutputPairs()),
                  bench::Fmt(result->total_seconds, 2),
                  result->matches.SameAs(reference) ? "yes" : "NO"});
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("=== Appendix I: matching two sources ===\n\n");
  AppendixExample();
  SyntheticLinkage();
  return 0;
}
